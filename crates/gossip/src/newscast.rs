//! Newscast-style peer sampler.
//!
//! Newscast (ref. \[12\] in the paper; Jelasity, Montresor, Babaoglu 2005) is the
//! substrate used by the original JK algorithm: each cycle a node picks a
//! *uniformly random* neighbor, the two merge their full views plus fresh
//! self-descriptors, and each keeps the `c` *freshest* entries.
//!
//! Compared to the Cyclon variant it is more aggressive about freshness
//! (entries older than any incoming entry are quickly displaced) at the cost
//! of a slightly less uniform neighbor distribution — the trade-off §6.2 of
//! the paper discusses. It is included so the two substrates can be compared
//! under the same protocols (see `bench/ablations`).

use crate::sampler::{ExchangeRequest, PeerSampler, SamplerKind};
use dslice_core::{NodeId, Result, View, ViewEntry};
use rand::RngCore;

/// A Newscast-style peer sampler: random partner, freshest-`c` merge.
#[derive(Debug, Clone)]
pub struct NewscastSampler {
    owner: NodeId,
    view: View,
}

impl NewscastSampler {
    /// Creates a sampler for `owner` with view capacity `c`.
    pub fn new(owner: NodeId, capacity: usize) -> Result<Self> {
        Ok(NewscastSampler {
            owner,
            view: View::new(capacity)?,
        })
    }

    /// Newscast merge: union of both views, keep the `c` freshest entries
    /// (smallest age), never a self-pointer, unique ids.
    fn newscast_merge(&mut self, incoming: &[ViewEntry]) {
        let mut pool: Vec<ViewEntry> = self.view.entries().to_vec();
        for e in incoming {
            if e.id == self.owner {
                continue;
            }
            match pool.iter_mut().find(|p| p.id == e.id) {
                Some(existing) => {
                    if e.age < existing.age {
                        *existing = *e;
                    }
                }
                None => pool.push(*e),
            }
        }
        // Keep the freshest `c`, ties broken by id for determinism.
        pool.sort_by(|a, b| a.age.cmp(&b.age).then_with(|| a.id.cmp(&b.id)));
        pool.truncate(self.view.capacity());
        let capacity = self.view.capacity();
        let mut fresh = View::new(capacity).expect("capacity >= 1");
        for e in pool {
            fresh.insert(e);
        }
        self.view = fresh;
    }
}

impl PeerSampler for NewscastSampler {
    fn owner(&self) -> NodeId {
        self.owner
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::Newscast
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    fn initiate(
        &mut self,
        self_entry: ViewEntry,
        rng: &mut dyn RngCore,
    ) -> Option<ExchangeRequest> {
        let partner = self.schedule_exchange(rng)?;
        Some(self.initiate_with(partner, self_entry, rng))
    }

    fn schedule_exchange(&mut self, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.view.increment_ages();
        Some(self.view.random(rng)?.id)
    }

    fn initiate_with(
        &mut self,
        partner: NodeId,
        self_entry: ViewEntry,
        _rng: &mut dyn RngCore,
    ) -> ExchangeRequest {
        let mut entries: Vec<ViewEntry> = self.view.entries().to_vec();
        entries.push(self_entry);
        ExchangeRequest { partner, entries }
    }

    fn handle_request(
        &mut self,
        self_entry: ViewEntry,
        from: NodeId,
        entries: &[ViewEntry],
    ) -> Vec<ViewEntry> {
        let mut reply: Vec<ViewEntry> =
            self.view.iter().filter(|e| e.id != from).copied().collect();
        reply.push(self_entry);
        self.newscast_merge(entries);
        reply
    }

    fn handle_reply(&mut self, _from: NodeId, entries: &[ViewEntry]) {
        self.newscast_merge(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn entry(id: u64, age: u32) -> ViewEntry {
        ViewEntry::with_age(NodeId::new(id), age, attr(id as f64), 0.5)
    }

    fn descriptor(id: u64) -> ViewEntry {
        ViewEntry::new(NodeId::new(id), attr(id as f64), 0.5)
    }

    #[test]
    fn merge_keeps_freshest_c() {
        let mut s = NewscastSampler::new(NodeId::new(0), 2).unwrap();
        s.view_mut().insert(entry(1, 5));
        s.view_mut().insert(entry(2, 3));
        s.newscast_merge(&[entry(3, 0), entry(4, 1)]);
        assert_eq!(s.view().len(), 2);
        assert!(s.view().contains(NodeId::new(3)));
        assert!(s.view().contains(NodeId::new(4)));
        assert!(
            !s.view().contains(NodeId::new(1)),
            "stale entries displaced"
        );
    }

    #[test]
    fn merge_prefers_younger_duplicate_and_skips_self() {
        let mut s = NewscastSampler::new(NodeId::new(0), 4).unwrap();
        s.view_mut().insert(entry(1, 6));
        s.newscast_merge(&[entry(1, 2), entry(0, 0)]);
        assert_eq!(s.view().get(NodeId::new(1)).unwrap().age, 2);
        assert!(!s.view().contains(NodeId::new(0)));
    }

    #[test]
    fn initiate_picks_random_partner_and_sends_everything() {
        let mut s = NewscastSampler::new(NodeId::new(0), 4).unwrap();
        for i in 1..=4 {
            s.view_mut().insert(entry(i, 0));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let req = s.initiate(descriptor(0), &mut rng).unwrap();
        assert!((1..=4).contains(&req.partner.as_u64()));
        // Payload: whole view + self descriptor = 5 entries.
        assert_eq!(req.entries.len(), 5);
    }

    #[test]
    fn full_exchange_converges_views() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let mut sa = NewscastSampler::new(a, 4).unwrap();
        let mut sb = NewscastSampler::new(b, 4).unwrap();
        sa.view_mut().insert(entry(1, 2));
        sb.view_mut().insert(entry(7, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let req = sa.initiate(descriptor(0), &mut rng).unwrap();
        let reply = sb.handle_request(descriptor(1), a, &req.entries);
        sa.handle_reply(b, &reply);
        sa.view().check_invariants(Some(a)).unwrap();
        sb.view().check_invariants(Some(b)).unwrap();
        assert!(sb.view().contains(a), "b learned fresh descriptor of a");
        assert!(sa.view().contains(NodeId::new(7)), "a learned b's neighbor");
    }

    #[test]
    fn initiate_on_empty_view_returns_none() {
        let mut s = NewscastSampler::new(NodeId::new(0), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(s.initiate(descriptor(0), &mut rng).is_none());
    }
}
