//! # dslice-gossip
//!
//! Peer-sampling substrates for the distributed slicing protocols.
//!
//! The slicing algorithms of the paper assume an underlying *peer sampling
//! service* that keeps every node's bounded [`View`](dslice_core::View)
//! stocked with a continuously refreshed, quasi-uniform sample of the live
//! network (§4.3.1):
//!
//! > Several protocols may be used to provide a random and dynamic sampling
//! > in a peer to peer system such as Newscast, Cyclon or Lpbcast. […] In
//! > this report, we chose to use a variant of the Cyclon protocol […] as it
//! > is reportedly the best approach to achieve a uniform random neighbor
//! > set for all nodes.
//!
//! This crate provides four interchangeable samplers:
//!
//! * [`CyclonSampler`] — the paper's Cyclon variant (Fig. 3): swap the
//!   *entire view* with the *oldest* neighbor each cycle.
//! * [`NewscastSampler`] — a Newscast-style sampler (random partner,
//!   freshness-based merge), the substrate used by the original JK paper.
//! * [`LpbcastSampler`] — an Lpbcast-style sampler (push-only digests,
//!   random eviction), the third substrate §4.3.1 names.
//! * [`UniformOracle`] — an idealized sampler whose view is refilled with
//!   uniformly random live nodes by the runtime each cycle; the "uniform"
//!   baseline of Fig. 6(b).
//!
//! All three implement [`PeerSampler`], a three-phase message-level
//! interface (`initiate` → `handle_request` → `handle_reply`) that the cycle
//! simulator drives atomically and the network runtime drives over real
//! sockets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cyclon;
pub mod lpbcast;
pub mod newscast;
pub mod sampler;
pub mod uniform;

pub use cyclon::CyclonSampler;
pub use lpbcast::LpbcastSampler;
pub use newscast::NewscastSampler;
pub use sampler::{PeerSampler, SamplerConfig, SamplerKind};
pub use uniform::UniformOracle;

use dslice_core::{Attribute, NodeId, Result, ViewEntry};

/// A boxed sampler, selected at runtime from a [`SamplerKind`].
pub fn build_sampler(
    kind: SamplerKind,
    owner: NodeId,
    capacity: usize,
) -> Result<Box<dyn PeerSampler>> {
    Ok(match kind {
        SamplerKind::Cyclon => Box::new(CyclonSampler::new(owner, capacity)?),
        SamplerKind::Newscast => Box::new(NewscastSampler::new(owner, capacity)?),
        SamplerKind::Lpbcast => Box::new(LpbcastSampler::new(owner, capacity)?),
        SamplerKind::UniformOracle => Box::new(UniformOracle::new(owner, capacity)?),
    })
}

/// Convenience: the self-descriptor `⟨i, 0, a_i, r_i⟩` a node contributes to
/// exchanges (line 3 of Fig. 3).
pub fn self_descriptor(id: NodeId, attribute: Attribute, value: f64) -> ViewEntry {
    ViewEntry::new(id, attribute, value)
}
