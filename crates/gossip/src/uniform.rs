//! The idealized uniform sampler.
//!
//! Figure 6(b) of the paper compares the ranking algorithm running on top of
//! "an artificial protocol, drawing neighbors randomly at uniform in each
//! cycle of the algorithm execution" against the Cyclon variant. This module
//! is that artificial protocol: it never gossips; instead the runtime calls
//! [`UniformOracle::refill`] each cycle with `c` uniformly drawn live nodes.
//!
//! It doubles as a test utility — protocols can be unit-tested against a
//! perfectly uniform sample stream without simulating the membership layer.

use crate::sampler::{ExchangeRequest, PeerSampler, SamplerKind};
use dslice_core::{NodeId, Result, View, ViewEntry};
use rand::RngCore;

/// An oracle-backed sampler: the runtime refills the view each cycle.
#[derive(Debug, Clone)]
pub struct UniformOracle {
    owner: NodeId,
    view: View,
}

impl UniformOracle {
    /// Creates an oracle sampler for `owner` with view capacity `c`.
    pub fn new(owner: NodeId, capacity: usize) -> Result<Self> {
        Ok(UniformOracle {
            owner,
            view: View::new(capacity)?,
        })
    }

    /// Replaces the entire view with the given entries (self-pointers are
    /// dropped; at most `c` entries are kept, in the given order).
    pub fn refill(&mut self, entries: &[ViewEntry]) {
        let capacity = self.view.capacity();
        let mut fresh = View::new(capacity).expect("capacity >= 1");
        for e in entries {
            if e.id != self.owner && fresh.len() < capacity {
                fresh.insert(*e);
            }
        }
        self.view = fresh;
    }
}

impl PeerSampler for UniformOracle {
    fn owner(&self) -> NodeId {
        self.owner
    }

    fn kind(&self) -> SamplerKind {
        SamplerKind::UniformOracle
    }

    fn view(&self) -> &View {
        &self.view
    }

    fn view_mut(&mut self) -> &mut View {
        &mut self.view
    }

    /// The oracle never initiates gossip; freshness comes from `refill`.
    fn initiate(
        &mut self,
        _self_entry: ViewEntry,
        _rng: &mut dyn RngCore,
    ) -> Option<ExchangeRequest> {
        None
    }

    fn handle_request(
        &mut self,
        _self_entry: ViewEntry,
        _from: NodeId,
        _entries: &[ViewEntry],
    ) -> Vec<ViewEntry> {
        Vec::new()
    }

    fn handle_reply(&mut self, _from: NodeId, _entries: &[ViewEntry]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(id: u64) -> ViewEntry {
        ViewEntry::new(NodeId::new(id), Attribute::new(id as f64).unwrap(), 0.5)
    }

    #[test]
    fn refill_replaces_view_and_filters_self() {
        let mut s = UniformOracle::new(NodeId::new(0), 3).unwrap();
        s.refill(&[entry(1), entry(2)]);
        assert_eq!(s.view().len(), 2);
        s.refill(&[entry(0), entry(3), entry(4), entry(5), entry(6)]);
        assert_eq!(s.view().len(), 3, "capacity respected");
        assert!(!s.view().contains(NodeId::new(0)), "self filtered");
        assert!(!s.view().contains(NodeId::new(1)), "old entries replaced");
        s.view().check_invariants(Some(NodeId::new(0))).unwrap();
    }

    #[test]
    fn oracle_never_gossips() {
        let mut s = UniformOracle::new(NodeId::new(0), 3).unwrap();
        s.refill(&[entry(1)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.initiate(entry(0), &mut rng).is_none());
        assert!(s
            .handle_request(entry(0), NodeId::new(1), &[entry(2)])
            .is_empty());
        s.handle_reply(NodeId::new(1), &[entry(3)]);
        assert!(!s.view().contains(NodeId::new(3)));
    }
}
