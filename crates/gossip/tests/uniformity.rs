//! Statistical quality of the Cyclon-variant peer sampler.
//!
//! The ranking algorithm's correctness rests on the sampler delivering a
//! quasi-uniform stream of peers (§4.3.1, §5.3.2). This test runs a full
//! overlay and checks, for a designated observer, that the long-run
//! frequency with which each other node appears in its view is close to
//! uniform — low coefficient of variation, no starving, no flooding.

use dslice_core::{Attribute, NodeId, ViewEntry};
use dslice_gossip::{CyclonSampler, PeerSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn descriptor(id: usize) -> ViewEntry {
    ViewEntry::new(
        NodeId::new(id as u64),
        Attribute::new(id as f64).unwrap(),
        0.5,
    )
}

/// Runs an overlay of `n` Cyclon samplers for `cycles` cycles, returning
/// how often each node id appeared in node 0's view (sampled once per
/// cycle).
fn observe(n: usize, c: usize, cycles: usize, seed: u64) -> HashMap<u64, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samplers: Vec<CyclonSampler> = (0..n)
        .map(|i| CyclonSampler::new(NodeId::new(i as u64), c).unwrap())
        .collect();
    for (i, sampler) in samplers.iter_mut().enumerate() {
        while sampler.view().len() < c {
            let j = rng.gen_range(0..n);
            if j != i {
                sampler.view_mut().insert(descriptor(j));
            }
        }
    }
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for _ in 0..cycles {
        for i in 0..n {
            let Some(req) = samplers[i].initiate(descriptor(i), &mut rng) else {
                continue;
            };
            let p = req.partner.as_u64() as usize;
            let reply =
                samplers[p].handle_request(descriptor(p), NodeId::new(i as u64), &req.entries);
            samplers[i].handle_reply(req.partner, &reply);
        }
        for e in samplers[0].view().iter() {
            *counts.entry(e.id.as_u64()).or_default() += 1;
        }
    }
    counts
}

#[test]
fn observer_sees_most_of_the_network_over_time() {
    let n = 120;
    let counts = observe(n, 8, 400, 11);
    // Over 400 cycles with view 8, node 0 draws 3 200 view slots; nearly
    // every other node should appear at least once.
    let seen = counts.len();
    assert!(
        seen >= (n - 1) * 9 / 10,
        "observer saw only {seen}/{} distinct peers",
        n - 1
    );
}

#[test]
fn view_occupancy_is_close_to_uniform() {
    let n = 120;
    let cycles = 600;
    let c = 8;
    let counts = observe(n, c, cycles, 13);
    let expected = (cycles * c) as f64 / (n - 1) as f64;

    // Coefficient of variation of per-peer appearance counts. For an ideal
    // uniform sampler the count is Binomial(cycles·c, 1/(n−1)) with
    // CV = √((1−p)/(cycles·c·p)) ≈ 0.157; gossip correlations inflate it,
    // but an order-of-magnitude blowup would mean the overlay is biased.
    let mut values: Vec<f64> = (1..n as u64)
        .map(|id| counts.get(&id).copied().unwrap_or(0) as f64)
        .collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    let cv = var.sqrt() / mean;
    assert!(
        (mean - expected).abs() < expected * 0.1,
        "mean occupancy {mean:.1} far from ideal {expected:.1}"
    );
    assert!(
        cv < 1.0,
        "occupancy CV {cv:.2} — the sampler is badly biased"
    );

    // No single node dominates: the hottest peer appears at most a small
    // multiple of the expectation.
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let hottest = values.last().copied().unwrap();
    assert!(
        hottest < expected * 4.0,
        "hottest peer appeared {hottest} times vs expected {expected:.0}"
    );
}

#[test]
fn uniformity_holds_across_view_sizes() {
    for &c in &[4usize, 16] {
        let n = 80;
        let cycles = 400;
        let counts = observe(n, c, cycles, 17 + c as u64);
        let expected = (cycles * c) as f64 / (n - 1) as f64;
        let mean = (1..n as u64)
            .map(|id| counts.get(&id).copied().unwrap_or(0) as f64)
            .sum::<f64>()
            / (n - 1) as f64;
        assert!(
            (mean - expected).abs() < expected * 0.15,
            "c = {c}: mean {mean:.1} vs expected {expected:.1}"
        );
    }
}
