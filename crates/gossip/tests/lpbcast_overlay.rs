//! Overlay health of the Lpbcast-style sampler.
//!
//! Lpbcast is push-only with random eviction, so its failure modes differ
//! from Cyclon's: descriptors can over-replicate (no swap conservation) and
//! stale descriptors linger (no age-based purge). These tests check that at
//! network scale the overlay nevertheless stays diverse, connected enough to
//! feed the slicing protocols, and spreads fresh descriptors everywhere.

use dslice_core::{Attribute, NodeId, ViewEntry};
use dslice_gossip::{LpbcastSampler, PeerSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

fn descriptor(id: usize) -> ViewEntry {
    ViewEntry::new(
        NodeId::new(id as u64),
        Attribute::new(id as f64).unwrap(),
        0.5,
    )
}

fn run_overlay(n: usize, c: usize, cycles: usize, seed: u64) -> Vec<LpbcastSampler> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samplers: Vec<LpbcastSampler> = (0..n)
        .map(|i| LpbcastSampler::new(NodeId::new(i as u64), c).unwrap())
        .collect();
    // Bootstrap: each node knows 3 random others.
    for (i, sampler) in samplers.iter_mut().enumerate() {
        while sampler.view().len() < 3.min(c) {
            let j = rng.gen_range(0..n);
            if j != i {
                sampler.view_mut().insert(descriptor(j));
            }
        }
    }
    for _ in 0..cycles {
        for i in 0..n {
            let Some(req) = samplers[i].initiate(descriptor(i), &mut rng) else {
                continue;
            };
            let p = req.partner.as_u64() as usize;
            let reply =
                samplers[p].handle_request(descriptor(p), NodeId::new(i as u64), &req.entries);
            samplers[i].handle_reply(req.partner, &reply);
        }
    }
    samplers
}

/// Size of the strongly-reachable set from node 0 following view edges.
fn reachable_from_zero(samplers: &[LpbcastSampler]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    seen.insert(0);
    queue.push_back(0);
    while let Some(u) = queue.pop_front() {
        for e in samplers[u as usize].view().iter() {
            if seen.insert(e.id.as_u64()) {
                queue.push_back(e.id.as_u64());
            }
        }
    }
    seen.len()
}

#[test]
fn overlay_becomes_and_stays_connected() {
    let n = 300;
    let samplers = run_overlay(n, 10, 80, 23);
    let reach = reachable_from_zero(&samplers);
    assert!(
        reach >= n * 95 / 100,
        "only {reach}/{n} nodes reachable from node 0"
    );
}

#[test]
fn views_fill_and_hold_invariants() {
    let n = 200;
    let samplers = run_overlay(n, 8, 60, 29);
    for (i, s) in samplers.iter().enumerate() {
        s.view()
            .check_invariants(Some(NodeId::new(i as u64)))
            .unwrap();
    }
    let mean: f64 = samplers.iter().map(|s| s.view().len() as f64).sum::<f64>() / n as f64;
    assert!(mean > 7.0, "views stayed thin: mean occupancy {mean:.2}");
}

#[test]
fn no_descriptor_floods_the_network() {
    // Random eviction without swap conservation can in principle let one
    // descriptor over-replicate; verify in-degree stays bounded.
    let n = 300;
    let samplers = run_overlay(n, 10, 80, 31);
    let mut indegree: HashMap<u64, usize> = HashMap::new();
    for s in &samplers {
        for e in s.view().iter() {
            *indegree.entry(e.id.as_u64()).or_default() += 1;
        }
    }
    let max = indegree.values().copied().max().unwrap_or(0);
    let mean = indegree.values().sum::<usize>() as f64 / indegree.len() as f64;
    assert!(
        (max as f64) < mean * 8.0,
        "hottest descriptor replicated {max} times (mean {mean:.1})"
    );
}

#[test]
fn observer_sees_most_of_the_network() {
    let n = 150;
    let c = 8;
    let cycles = 300;
    let mut rng = StdRng::seed_from_u64(37);
    let mut samplers: Vec<LpbcastSampler> = (0..n)
        .map(|i| LpbcastSampler::new(NodeId::new(i as u64), c).unwrap())
        .collect();
    for (i, sampler) in samplers.iter_mut().enumerate() {
        while sampler.view().len() < 3 {
            let j = rng.gen_range(0..n);
            if j != i {
                sampler.view_mut().insert(descriptor(j));
            }
        }
    }
    let mut seen: HashSet<u64> = HashSet::new();
    for _ in 0..cycles {
        for i in 0..n {
            let Some(req) = samplers[i].initiate(descriptor(i), &mut rng) else {
                continue;
            };
            let p = req.partner.as_u64() as usize;
            let reply =
                samplers[p].handle_request(descriptor(p), NodeId::new(i as u64), &req.entries);
            samplers[i].handle_reply(req.partner, &reply);
        }
        for e in samplers[0].view().iter() {
            seen.insert(e.id.as_u64());
        }
    }
    assert!(
        seen.len() >= (n - 1) * 8 / 10,
        "observer saw only {}/{} distinct peers",
        seen.len(),
        n - 1
    );
}
