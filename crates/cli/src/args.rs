//! Hand-rolled argument parsing (no external CLI dependency).

use dslice_sim::churn::ChurnSchedule;
use dslice_sim::{AttributeDistribution, Concurrency, LatencyModel, ProtocolKind, SamplerKind};

/// Top-level command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a simulation.
    Sim(SimArgs),
    /// Evaluate one of the paper's analytic bounds.
    Analyze(AnalyzeArgs),
    /// Map a normalized rank to its slice.
    SliceOf {
        /// Number of equal slices.
        slices: usize,
        /// The normalized rank in (0, 1].
        rank: f64,
    },
    /// Run one scenario from the committed library.
    RunScenario(ScenarioArgs),
    /// Run the protocols over real sockets on loopback, with chaos knobs.
    NetRun(NetRunArgs),
    /// Print usage.
    Help,
}

/// Arguments of `dslice-cli net-run`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRunArgs {
    pub protocol: ProtocolKind,
    pub sampler: SamplerKind,
    pub n: usize,
    pub slices: usize,
    pub view: usize,
    pub period_ms: u64,
    pub duration_ms: u64,
    pub seed: u64,
    pub bootstrap: usize,
    pub distribution: AttributeDistribution,
    /// Wire-level loss probability.
    pub loss: f64,
    /// Wire-level extra delay range in milliseconds.
    pub delay_ms: Option<(u64, u64)>,
    /// Crash this fraction of the nodes at this offset: `(frac, at_ms)`.
    pub crash: Option<(f64, u64)>,
    /// Restart the crashed nodes at this offset (requires `--crash`).
    pub restart_at_ms: Option<u64>,
    /// Refuse inbound connections on a fraction of the nodes:
    /// `(frac, at_ms, window_ms)`.
    pub refuse: Option<(f64, u64, u64)>,
    /// Stall (accept but never read) inbound connections:
    /// `(frac, at_ms, window_ms)`.
    pub stall: Option<(f64, u64, u64)>,
    pub json: Option<String>,
    pub quiet: bool,
    /// Write the final scraped metrics registry here (Prometheus text).
    pub metrics_out: Option<String>,
    /// Stream the scraped registry here as JSON lines while running.
    pub metrics_stream: Option<String>,
    /// Cadence of the metrics stream in milliseconds.
    pub scrape_every_ms: u64,
}

impl Default for NetRunArgs {
    fn default() -> Self {
        NetRunArgs {
            protocol: ProtocolKind::Ranking,
            sampler: SamplerKind::Cyclon,
            n: 16,
            slices: 2,
            view: 8,
            period_ms: 20,
            duration_ms: 1000,
            seed: 0xD51CE,
            bootstrap: 4,
            distribution: AttributeDistribution::Uniform { lo: 0.0, hi: 1.0 },
            loss: 0.0,
            delay_ms: None,
            crash: None,
            restart_at_ms: None,
            refuse: None,
            stall: None,
            json: None,
            quiet: false,
            metrics_out: None,
            metrics_stream: None,
            scrape_every_ms: 100,
        }
    }
}

/// Arguments of `dslice-cli run-scenario`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioArgs {
    /// Scenario name (`--list` to see them); `None` only with `list`.
    pub name: Option<String>,
    /// Write the full JSON report here.
    pub json: Option<String>,
    /// List the library and exit.
    pub list: bool,
    /// Suppress the trajectory table.
    pub quiet: bool,
    /// Write a chrome://tracing trace of the run here.
    pub trace_out: Option<String>,
    /// Write the trace as JSON lines here.
    pub trace_jsonl: Option<String>,
    /// Trace only every Nth cycle.
    pub trace_sample: u64,
    /// Write the run's metrics registry here (Prometheus text).
    pub metrics_out: Option<String>,
}

/// Arguments of `dslice-cli sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    pub protocol: ProtocolKind,
    pub sampler: SamplerKind,
    pub n: usize,
    pub slices: usize,
    pub view: usize,
    pub cycles: usize,
    pub seed: u64,
    pub concurrency: Concurrency,
    pub latency: LatencyModel,
    pub churn: ChurnSpec,
    pub distribution: AttributeDistribution,
    pub shards: usize,
    pub metrics_every: usize,
    pub time_phases: bool,
    pub csv: Option<String>,
    pub json: Option<String>,
    pub quiet: bool,
    /// Write a chrome://tracing trace of the run here.
    pub trace_out: Option<String>,
    /// Write the trace as JSON lines here.
    pub trace_jsonl: Option<String>,
    /// Trace only every Nth cycle.
    pub trace_sample: u64,
    /// Write the run's metrics registry here (Prometheus text).
    pub metrics_out: Option<String>,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            protocol: ProtocolKind::Ranking,
            sampler: SamplerKind::Cyclon,
            n: 1000,
            slices: 10,
            view: 10,
            cycles: 100,
            seed: 0xD51CE,
            concurrency: Concurrency::None,
            latency: LatencyModel::Zero,
            churn: ChurnSpec::None,
            distribution: AttributeDistribution::Uniform { lo: 0.0, hi: 1.0 },
            shards: 1,
            metrics_every: 1,
            time_phases: false,
            csv: None,
            json: None,
            quiet: false,
            trace_out: None,
            trace_jsonl: None,
            trace_sample: 1,
            metrics_out: None,
        }
    }
}

/// Churn selection for the CLI.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnSpec {
    None,
    /// Attribute-correlated churn: `rate` per event, every `period` cycles.
    Correlated {
        rate: f64,
        period: usize,
    },
    /// Uncorrelated churn with the run's base distribution.
    Uncorrelated {
        rate: f64,
        period: usize,
    },
}

impl ChurnSpec {
    pub fn schedule(rate: f64, period: usize) -> ChurnSchedule {
        ChurnSchedule {
            rate,
            period,
            stop_after: None,
        }
    }
}

/// Arguments of `dslice-cli analyze`.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeArgs {
    /// Lemma 4.1: minimal admissible slice length + probability bound.
    Lemma41 {
        beta: f64,
        epsilon: f64,
        n: usize,
        p: Option<f64>,
    },
    /// Theorem 5.1: samples required for a confident slice estimate.
    Samples { p: f64, d: f64, alpha: f64 },
    /// Slice population moments (§4.4).
    Population { n: usize, p: f64 },
}

pub const USAGE: &str = "\
dslice-cli — distributed slicing from the shell

USAGE:
  dslice-cli sim [--protocol jk|mod-jk|mod-jk-live[:<strikes>:<cooldown>]|ranking
                             |ranking-uniform|sliding:<window>|decay:<lambda>|robust:<window>
                             |trimmed:<window>:<pct>|fence-trim:<window>:<pct>]
                 [--sampler cyclon|newscast|lpbcast|uniform]
                 [--n N] [--slices K] [--view C] [--cycles T] [--seed S]
                 [--concurrency none|half|full]
                 [--latency zero|fixed:<cycles>|uniform:<min>:<max>|geometric:<p>]
                 [--churn none|correlated:<rate>:<period>|uncorrelated:<rate>:<period>]
                 [--distribution uniform|pareto:<scale>:<shape>|normal:<mean>:<std>|exp:<rate>]
                 [--shards W] [--metrics-every M] [--time-phases]
                 [--csv FILE] [--json FILE] [--quiet]
                 [--trace-out FILE] [--trace-jsonl FILE] [--trace-sample N]
                 [--metrics-out FILE]
             (`run` is an alias for `sim`)
  dslice-cli analyze lemma41 --beta B --epsilon E --n N [--p P]
  dslice-cli analyze samples --p P --d D [--alpha A]
  dslice-cli analyze population --n N --p P
  dslice-cli slice-of --slices K --rank R
  dslice-cli run-scenario <NAME> [--json FILE] [--quiet]
                 [--trace-out FILE] [--trace-jsonl FILE] [--trace-sample N]
                 [--metrics-out FILE]
  dslice-cli run-scenario --list
  dslice-cli net-run [--protocol P] [--sampler S] [--n N] [--slices K]
                     [--view C] [--period-ms MS] [--duration-ms MS] [--seed S]
                     [--bootstrap B] [--distribution D]
                     [--loss P] [--delay-ms MIN:MAX]
                     [--crash FRAC:AT_MS] [--restart AT_MS]
                     [--refuse FRAC:AT_MS:DUR_MS] [--stall FRAC:AT_MS:DUR_MS]
                     [--json FILE] [--quiet]
                     [--metrics-out FILE] [--metrics-stream FILE]
                     [--scrape-every-ms MS]
  dslice-cli help";

fn value(argv: &[String], i: usize) -> Result<&str, String> {
    argv.get(i + 1)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{} requires a value", argv[i]))
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("invalid value for {flag}: {raw:?} ({e})"))
}

/// Default liveness knobs for a bare `mod-jk-live` (the scenario library's
/// calibration: two strikes, a 64-activation ban).
const MOD_JK_LIVE_DEFAULTS: ProtocolKind = ProtocolKind::ModJkLive {
    strike_limit: 2,
    cooldown: 64,
};

/// `<window>:<pct>` for the trimming kinds. The fraction is converted to
/// parts per million (the `Copy + Eq` representation the kind stores);
/// out-of-range fractions surface as parse errors via `validate`, not
/// panics, so the constructors are bypassed deliberately.
fn parse_trim_spec(kind: &str, spec: &str, raw: &str) -> Result<(usize, u32), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 2 {
        return Err(format!("{kind} takes <window>:<pct>, got {raw:?}"));
    }
    let window = parse_num(&format!("--protocol {kind} window"), parts[0])?;
    let pct: f64 = parse_num(&format!("--protocol {kind} fraction"), parts[1])?;
    if !pct.is_finite() || pct < 0.0 {
        return Err(format!(
            "{kind} fraction must be a fraction in (0, 0.5), got {pct}"
        ));
    }
    Ok((window, (pct * 1e6).round() as u32))
}

pub fn parse_protocol(raw: &str) -> Result<ProtocolKind, String> {
    let kind = match raw {
        "jk" => ProtocolKind::Jk,
        "mod-jk" | "modjk" => ProtocolKind::ModJk,
        "mod-jk-live" | "modjklive" => MOD_JK_LIVE_DEFAULTS,
        "ranking" => ProtocolKind::Ranking,
        "ranking-uniform" => ProtocolKind::RankingUniform,
        "sliding" => {
            return Err("sliding requires an explicit window (sliding:<window>)".into());
        }
        other => {
            if let Some(window) = other.strip_prefix("sliding:") {
                ProtocolKind::SlidingRanking {
                    window: parse_num("--protocol sliding", window)?,
                }
            } else if let Some(lambda) = other.strip_prefix("decay:") {
                let lambda: f64 = parse_num("--protocol decay", lambda)?;
                // Constructed directly (not via `ProtocolKind::decay`, which
                // panics) so out-of-range factors surface as parse errors.
                ProtocolKind::DecayRanking {
                    lambda_ppm: (lambda * 1e6).round() as u32,
                }
            } else if let Some(window) = other.strip_prefix("robust:") {
                ProtocolKind::RobustRanking {
                    window: parse_num("--protocol robust", window)?,
                }
            } else if let Some(spec) = other.strip_prefix("trimmed:") {
                let (window, trim_ppm) = parse_trim_spec("trimmed", spec, raw)?;
                ProtocolKind::TrimmedRanking { window, trim_ppm }
            } else if let Some(spec) = other.strip_prefix("fence-trim:") {
                let (window, trim_ppm) = parse_trim_spec("fence-trim", spec, raw)?;
                ProtocolKind::FencedTrimmedRanking { window, trim_ppm }
            } else if let Some(spec) = other.strip_prefix("mod-jk-live:") {
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 2 {
                    return Err(format!(
                        "mod-jk-live takes <strike-limit>:<cooldown>, got {raw:?}"
                    ));
                }
                ProtocolKind::ModJkLive {
                    strike_limit: parse_num("--protocol mod-jk-live strike limit", parts[0])?,
                    cooldown: parse_num("--protocol mod-jk-live cooldown", parts[1])?,
                }
            } else {
                return Err(format!("unknown protocol {other:?}"));
            }
        }
    };
    kind.validate()
        .map_err(|e| format!("invalid protocol {raw:?}: {e}"))?;
    Ok(kind)
}

pub fn parse_sampler(raw: &str) -> Result<SamplerKind, String> {
    match raw {
        "cyclon" => Ok(SamplerKind::Cyclon),
        "newscast" => Ok(SamplerKind::Newscast),
        "lpbcast" => Ok(SamplerKind::Lpbcast),
        "uniform" | "oracle" => Ok(SamplerKind::UniformOracle),
        other => Err(format!("unknown sampler {other:?}")),
    }
}

pub fn parse_latency(raw: &str) -> Result<LatencyModel, String> {
    if raw == "zero" {
        return Ok(LatencyModel::Zero);
    }
    let parts: Vec<&str> = raw.split(':').collect();
    match parts[0] {
        "fixed" if parts.len() == 2 => Ok(LatencyModel::Fixed {
            cycles: parse_num("--latency fixed", parts[1])?,
        }),
        "uniform" if parts.len() == 3 => Ok(LatencyModel::Uniform {
            min: parse_num("--latency uniform min", parts[1])?,
            max: parse_num("--latency uniform max", parts[2])?,
        }),
        "geometric" if parts.len() == 2 => {
            let p: f64 = parse_num("--latency geometric", parts[1])?;
            if !(0.0..1.0).contains(&p) {
                return Err(format!("geometric p must lie in [0, 1), got {p}"));
            }
            Ok(LatencyModel::Geometric { p })
        }
        _ => Err(format!("unknown latency spec {raw:?}")),
    }
}

pub fn parse_concurrency(raw: &str) -> Result<Concurrency, String> {
    match raw {
        "none" => Ok(Concurrency::None),
        "half" => Ok(Concurrency::Half),
        "full" => Ok(Concurrency::Full),
        other => Err(format!("unknown concurrency {other:?}")),
    }
}

pub fn parse_churn(raw: &str) -> Result<ChurnSpec, String> {
    if raw == "none" {
        return Ok(ChurnSpec::None);
    }
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 3 {
        return Err(format!(
            "churn spec must be none or <kind>:<rate>:<period>, got {raw:?}"
        ));
    }
    let rate: f64 = parse_num("--churn rate", parts[1])?;
    let period: usize = parse_num("--churn period", parts[2])?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("churn rate must lie in [0, 1], got {rate}"));
    }
    if period == 0 {
        return Err("churn period must be at least 1".into());
    }
    match parts[0] {
        "correlated" => Ok(ChurnSpec::Correlated { rate, period }),
        "uncorrelated" => Ok(ChurnSpec::Uncorrelated { rate, period }),
        other => Err(format!("unknown churn kind {other:?}")),
    }
}

pub fn parse_distribution(raw: &str) -> Result<AttributeDistribution, String> {
    if raw == "uniform" {
        return Ok(AttributeDistribution::Uniform { lo: 0.0, hi: 1.0 });
    }
    let parts: Vec<&str> = raw.split(':').collect();
    let dist = match parts[0] {
        "pareto" if parts.len() == 3 => AttributeDistribution::Pareto {
            scale: parse_num("--distribution pareto scale", parts[1])?,
            shape: parse_num("--distribution pareto shape", parts[2])?,
        },
        "normal" if parts.len() == 3 => AttributeDistribution::Normal {
            mean: parse_num("--distribution normal mean", parts[1])?,
            std_dev: parse_num("--distribution normal std", parts[2])?,
        },
        "exp" if parts.len() == 2 => AttributeDistribution::Exponential {
            rate: parse_num("--distribution exp rate", parts[1])?,
        },
        _ => return Err(format!("unknown distribution spec {raw:?}")),
    };
    dist.validate().map_err(|e| e.to_string())?;
    Ok(dist)
}

/// `<frac>` in (0, 1] — the node fraction a chaos flag targets.
fn parse_frac(flag: &str, raw: &str) -> Result<f64, String> {
    let frac: f64 = parse_num(flag, raw)?;
    if !frac.is_finite() || !(0.0..=1.0).contains(&frac) || frac == 0.0 {
        return Err(format!("{flag} fraction must lie in (0, 1], got {frac}"));
    }
    Ok(frac)
}

/// `<frac>:<at-ms>` for `--crash`.
fn parse_crash_spec(raw: &str) -> Result<(f64, u64), String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 2 {
        return Err(format!("--crash takes <frac>:<at-ms>, got {raw:?}"));
    }
    Ok((
        parse_frac("--crash", parts[0])?,
        parse_num("--crash at-ms", parts[1])?,
    ))
}

/// `<frac>:<at-ms>:<dur-ms>` for `--refuse` / `--stall`.
fn parse_gate_spec(flag: &str, raw: &str) -> Result<(f64, u64, u64), String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("{flag} takes <frac>:<at-ms>:<dur-ms>, got {raw:?}"));
    }
    let window: u64 = parse_num(&format!("{flag} dur-ms"), parts[2])?;
    if window == 0 {
        return Err(format!("{flag} window must be positive"));
    }
    Ok((
        parse_frac(flag, parts[0])?,
        parse_num(&format!("{flag} at-ms"), parts[1])?,
        window,
    ))
}

/// `<min>:<max>` milliseconds for `--delay-ms`.
fn parse_delay_spec(raw: &str) -> Result<(u64, u64), String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 2 {
        return Err(format!("--delay-ms takes <min>:<max>, got {raw:?}"));
    }
    let min: u64 = parse_num("--delay-ms min", parts[0])?;
    let max: u64 = parse_num("--delay-ms max", parts[1])?;
    if min > max {
        return Err(format!("--delay-ms range inverted: {min} > {max}"));
    }
    Ok((min, max))
}

fn parse_net_run(argv: &[String]) -> Result<NetRunArgs, String> {
    let mut args = NetRunArgs::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--protocol" => {
                args.protocol = parse_protocol(value(argv, i)?)?;
                i += 2;
            }
            "--sampler" => {
                args.sampler = parse_sampler(value(argv, i)?)?;
                i += 2;
            }
            "--n" => {
                args.n = parse_num("--n", value(argv, i)?)?;
                i += 2;
            }
            "--slices" => {
                args.slices = parse_num("--slices", value(argv, i)?)?;
                i += 2;
            }
            "--view" => {
                args.view = parse_num("--view", value(argv, i)?)?;
                i += 2;
            }
            "--period-ms" => {
                args.period_ms = parse_num("--period-ms", value(argv, i)?)?;
                i += 2;
            }
            "--duration-ms" => {
                args.duration_ms = parse_num("--duration-ms", value(argv, i)?)?;
                i += 2;
            }
            "--seed" => {
                args.seed = parse_num("--seed", value(argv, i)?)?;
                i += 2;
            }
            "--bootstrap" => {
                args.bootstrap = parse_num("--bootstrap", value(argv, i)?)?;
                i += 2;
            }
            "--distribution" => {
                args.distribution = parse_distribution(value(argv, i)?)?;
                i += 2;
            }
            "--loss" => {
                let loss: f64 = parse_num("--loss", value(argv, i)?)?;
                if !loss.is_finite() || !(0.0..=1.0).contains(&loss) {
                    return Err(format!("--loss must lie in [0, 1], got {loss}"));
                }
                args.loss = loss;
                i += 2;
            }
            "--delay-ms" => {
                args.delay_ms = Some(parse_delay_spec(value(argv, i)?)?);
                i += 2;
            }
            "--crash" => {
                args.crash = Some(parse_crash_spec(value(argv, i)?)?);
                i += 2;
            }
            "--restart" => {
                args.restart_at_ms = Some(parse_num("--restart", value(argv, i)?)?);
                i += 2;
            }
            "--refuse" => {
                args.refuse = Some(parse_gate_spec("--refuse", value(argv, i)?)?);
                i += 2;
            }
            "--stall" => {
                args.stall = Some(parse_gate_spec("--stall", value(argv, i)?)?);
                i += 2;
            }
            "--json" => {
                args.json = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--quiet" => {
                args.quiet = true;
                i += 1;
            }
            "--metrics-out" => {
                args.metrics_out = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--metrics-stream" => {
                args.metrics_stream = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--scrape-every-ms" => {
                args.scrape_every_ms = parse_num("--scrape-every-ms", value(argv, i)?)?;
                if args.scrape_every_ms == 0 {
                    return Err("--scrape-every-ms must be positive".into());
                }
                i += 2;
            }
            other => return Err(format!("unknown net-run argument {other:?}\n\n{USAGE}")),
        }
    }
    if args.n == 0 {
        return Err("net-run needs at least one node (--n)".into());
    }
    // One OS thread per task in the vendored runtime: keep localhost
    // clusters small enough that parked threads don't dominate the box.
    if args.n > 128 {
        return Err(format!(
            "net-run is a localhost harness; --n must be at most 128, got {}",
            args.n
        ));
    }
    if args.period_ms == 0 {
        return Err("--period-ms must be positive".into());
    }
    if args.restart_at_ms.is_some() && args.crash.is_none() {
        return Err("--restart requires --crash (nothing would be down)".into());
    }
    if let (Some((_, crash_at)), Some(restart_at)) = (args.crash, args.restart_at_ms) {
        if restart_at <= crash_at {
            return Err(format!(
                "--restart at {restart_at} ms must come after the crash at {crash_at} ms"
            ));
        }
    }
    Ok(args)
}

fn parse_sim(argv: &[String]) -> Result<SimArgs, String> {
    let mut args = SimArgs::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--latency" => {
                args.latency = parse_latency(value(argv, i)?)?;
                i += 2;
            }
            "--sampler" => {
                args.sampler = parse_sampler(value(argv, i)?)?;
                i += 2;
            }
            "--protocol" => {
                args.protocol = parse_protocol(value(argv, i)?)?;
                i += 2;
            }
            "--n" => {
                args.n = parse_num("--n", value(argv, i)?)?;
                i += 2;
            }
            "--slices" => {
                args.slices = parse_num("--slices", value(argv, i)?)?;
                i += 2;
            }
            "--view" => {
                args.view = parse_num("--view", value(argv, i)?)?;
                i += 2;
            }
            "--cycles" => {
                args.cycles = parse_num("--cycles", value(argv, i)?)?;
                i += 2;
            }
            "--seed" => {
                args.seed = parse_num("--seed", value(argv, i)?)?;
                i += 2;
            }
            "--concurrency" => {
                args.concurrency = parse_concurrency(value(argv, i)?)?;
                i += 2;
            }
            "--churn" => {
                args.churn = parse_churn(value(argv, i)?)?;
                i += 2;
            }
            "--distribution" => {
                args.distribution = parse_distribution(value(argv, i)?)?;
                i += 2;
            }
            "--shards" => {
                args.shards = parse_num("--shards", value(argv, i)?)?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                i += 2;
            }
            "--metrics-every" => {
                args.metrics_every = parse_num("--metrics-every", value(argv, i)?)?;
                if args.metrics_every == 0 {
                    return Err("--metrics-every must be at least 1".into());
                }
                i += 2;
            }
            "--time-phases" => {
                args.time_phases = true;
                i += 1;
            }
            "--csv" => {
                args.csv = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--json" => {
                args.json = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--quiet" => {
                args.quiet = true;
                i += 1;
            }
            "--trace-out" => {
                args.trace_out = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--trace-jsonl" => {
                args.trace_jsonl = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--trace-sample" => {
                args.trace_sample = parse_num("--trace-sample", value(argv, i)?)?;
                if args.trace_sample == 0 {
                    return Err("--trace-sample must be at least 1".into());
                }
                i += 2;
            }
            "--metrics-out" => {
                args.metrics_out = Some(value(argv, i)?.to_string());
                i += 2;
            }
            other => return Err(format!("unknown sim argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_analyze(argv: &[String]) -> Result<AnalyzeArgs, String> {
    let Some(kind) = argv.first() else {
        return Err(format!("analyze requires a sub-command\n\n{USAGE}"));
    };
    let mut flags = std::collections::HashMap::new();
    let rest = &argv[1..];
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].clone();
        let val = value(rest, i)?.to_string();
        flags.insert(key, val);
        i += 2;
    }
    let get = |name: &str| -> Result<&String, String> {
        flags
            .get(name)
            .ok_or_else(|| format!("analyze {kind} requires {name}"))
    };
    match kind.as_str() {
        "lemma41" => Ok(AnalyzeArgs::Lemma41 {
            beta: parse_num("--beta", get("--beta")?)?,
            epsilon: parse_num("--epsilon", get("--epsilon")?)?,
            n: parse_num("--n", get("--n")?)?,
            p: flags.get("--p").map(|v| parse_num("--p", v)).transpose()?,
        }),
        "samples" => Ok(AnalyzeArgs::Samples {
            p: parse_num("--p", get("--p")?)?,
            d: parse_num("--d", get("--d")?)?,
            alpha: flags
                .get("--alpha")
                .map(|v| parse_num("--alpha", v))
                .transpose()?
                .unwrap_or(0.05),
        }),
        "population" => Ok(AnalyzeArgs::Population {
            n: parse_num("--n", get("--n")?)?,
            p: parse_num("--p", get("--p")?)?,
        }),
        other => Err(format!("unknown analyze sub-command {other:?}\n\n{USAGE}")),
    }
}

fn parse_scenario(argv: &[String]) -> Result<ScenarioArgs, String> {
    let mut args = ScenarioArgs {
        name: None,
        json: None,
        list: false,
        quiet: false,
        trace_out: None,
        trace_jsonl: None,
        trace_sample: 1,
        metrics_out: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--list" => {
                args.list = true;
                i += 1;
            }
            "--quiet" => {
                args.quiet = true;
                i += 1;
            }
            "--json" => {
                args.json = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--trace-out" => {
                args.trace_out = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--trace-jsonl" => {
                args.trace_jsonl = Some(value(argv, i)?.to_string());
                i += 2;
            }
            "--trace-sample" => {
                args.trace_sample = parse_num("--trace-sample", value(argv, i)?)?;
                if args.trace_sample == 0 {
                    return Err("--trace-sample must be at least 1".into());
                }
                i += 2;
            }
            "--metrics-out" => {
                args.metrics_out = Some(value(argv, i)?.to_string());
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown run-scenario argument {flag:?}\n\n{USAGE}"));
            }
            name => {
                if args.name.is_some() {
                    return Err(format!(
                        "run-scenario takes one scenario name, got {name:?} too"
                    ));
                }
                args.name = Some(name.to_string());
                i += 1;
            }
        }
    }
    if args.name.is_none() && !args.list {
        return Err(format!(
            "run-scenario requires a scenario name or --list\n\n{USAGE}"
        ));
    }
    Ok(args)
}

/// Parses the full command line.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    match argv.first().map(|s| s.as_str()) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("sim") | Some("run") => Ok(Command::Sim(parse_sim(&argv[1..])?)),
        Some("analyze") => Ok(Command::Analyze(parse_analyze(&argv[1..])?)),
        Some("slice-of") => {
            let rest = &argv[1..];
            let mut slices = None;
            let mut rank = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--slices" => {
                        slices = Some(parse_num("--slices", value(rest, i)?)?);
                        i += 2;
                    }
                    "--rank" => {
                        rank = Some(parse_num("--rank", value(rest, i)?)?);
                        i += 2;
                    }
                    other => return Err(format!("unknown slice-of argument {other:?}")),
                }
            }
            Ok(Command::SliceOf {
                slices: slices.ok_or("slice-of requires --slices")?,
                rank: rank.ok_or("slice-of requires --rank")?,
            })
        }
        Some("run-scenario") => Ok(Command::RunScenario(parse_scenario(&argv[1..])?)),
        Some("net-run") => Ok(Command::NetRun(parse_net_run(&argv[1..])?)),
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_full_sim_command() {
        let cmd = parse(&argv(
            "sim --protocol mod-jk --n 500 --slices 20 --view 15 --cycles 50 \
             --seed 9 --concurrency full --churn correlated:0.01:5 \
             --distribution pareto:1:1.5 --quiet",
        ))
        .unwrap();
        let Command::Sim(a) = cmd else {
            panic!("not sim")
        };
        assert_eq!(a.protocol, ProtocolKind::ModJk);
        assert_eq!(a.n, 500);
        assert_eq!(a.slices, 20);
        assert_eq!(a.view, 15);
        assert_eq!(a.cycles, 50);
        assert_eq!(a.seed, 9);
        assert_eq!(a.concurrency, Concurrency::Full);
        assert_eq!(
            a.churn,
            ChurnSpec::Correlated {
                rate: 0.01,
                period: 5
            }
        );
        assert!(matches!(
            a.distribution,
            AttributeDistribution::Pareto { .. }
        ));
        assert!(a.quiet);
    }

    #[test]
    fn protocol_specs() {
        assert_eq!(parse_protocol("jk").unwrap(), ProtocolKind::Jk);
        assert_eq!(parse_protocol("modjk").unwrap(), ProtocolKind::ModJk);
        assert_eq!(
            parse_protocol("sliding:512").unwrap(),
            ProtocolKind::SlidingRanking { window: 512 }
        );
        assert!(
            parse_protocol("sliding").is_err(),
            "a silent 10k default window hid the aging behavior entirely"
        );
        assert!(parse_protocol("sliding:0").is_err(), "degenerate window");
        assert!(parse_protocol("raft").is_err());
        assert!(parse_protocol("sliding:x").is_err());
    }

    #[test]
    fn defended_protocol_specs() {
        assert_eq!(
            parse_protocol("decay:0.998").unwrap(),
            ProtocolKind::DecayRanking {
                lambda_ppm: 998_000
            }
        );
        assert!(parse_protocol("decay:0").is_err(), "λ must exceed 0");
        assert!(parse_protocol("decay:1").is_err(), "λ must stay below 1");
        assert!(parse_protocol("decay:-3").is_err());
        assert!(parse_protocol("decay:x").is_err());
        assert_eq!(
            parse_protocol("robust:64").unwrap(),
            ProtocolKind::RobustRanking { window: 64 }
        );
        assert!(
            parse_protocol("robust:2").is_err(),
            "window below quartiles"
        );
        assert_eq!(
            parse_protocol("trimmed:128:0.1").unwrap(),
            ProtocolKind::TrimmedRanking {
                window: 128,
                trim_ppm: 100_000
            }
        );
        assert_eq!(
            parse_protocol("fence-trim:128:0.1").unwrap(),
            ProtocolKind::FencedTrimmedRanking {
                window: 128,
                trim_ppm: 100_000
            }
        );
        assert!(parse_protocol("trimmed:128").is_err(), "missing fraction");
        assert!(parse_protocol("trimmed:128:0.5").is_err(), "pct at 0.5");
        assert!(parse_protocol("trimmed:128:0").is_err(), "pct at 0");
        assert!(parse_protocol("trimmed:128:-0.1").is_err());
        assert!(parse_protocol("fence-trim:0:0.1").is_err(), "zero window");
        assert!(parse_protocol("fence-trim:128:x").is_err());
        assert_eq!(parse_protocol("mod-jk-live").unwrap(), MOD_JK_LIVE_DEFAULTS);
        assert_eq!(
            parse_protocol("mod-jk-live:3:128").unwrap(),
            ProtocolKind::ModJkLive {
                strike_limit: 3,
                cooldown: 128
            }
        );
        assert!(parse_protocol("mod-jk-live:0:16").is_err(), "zero strikes");
        assert!(parse_protocol("mod-jk-live:2").is_err(), "missing cooldown");
        assert!(parse_protocol("mod-jk-live:2:16:9").is_err());
    }

    #[test]
    fn ranking_uniform_and_sampler_specs() {
        assert_eq!(
            parse_protocol("ranking-uniform").unwrap(),
            ProtocolKind::RankingUniform
        );
        assert_eq!(parse_sampler("cyclon").unwrap(), SamplerKind::Cyclon);
        assert_eq!(parse_sampler("newscast").unwrap(), SamplerKind::Newscast);
        assert_eq!(parse_sampler("lpbcast").unwrap(), SamplerKind::Lpbcast);
        assert_eq!(
            parse_sampler("uniform").unwrap(),
            SamplerKind::UniformOracle
        );
        assert_eq!(parse_sampler("oracle").unwrap(), SamplerKind::UniformOracle);
        assert!(parse_sampler("chord").is_err());
    }

    #[test]
    fn latency_specs() {
        assert_eq!(parse_latency("zero").unwrap(), LatencyModel::Zero);
        assert_eq!(
            parse_latency("fixed:3").unwrap(),
            LatencyModel::Fixed { cycles: 3 }
        );
        assert_eq!(
            parse_latency("uniform:1:4").unwrap(),
            LatencyModel::Uniform { min: 1, max: 4 }
        );
        assert_eq!(
            parse_latency("geometric:0.5").unwrap(),
            LatencyModel::Geometric { p: 0.5 }
        );
        assert!(parse_latency("geometric:1.5").is_err(), "p out of range");
        assert!(parse_latency("fixed").is_err());
        assert!(parse_latency("warp:9").is_err());
    }

    #[test]
    fn sim_accepts_new_flags_together() {
        let cmd = parse(&argv(
            "sim --protocol ranking-uniform --sampler lpbcast --latency uniform:1:3 --n 100",
        ))
        .unwrap();
        let Command::Sim(a) = cmd else {
            panic!("not sim")
        };
        assert_eq!(a.protocol, ProtocolKind::RankingUniform);
        assert_eq!(a.sampler, SamplerKind::Lpbcast);
        assert_eq!(a.latency, LatencyModel::Uniform { min: 1, max: 3 });
        assert_eq!(a.n, 100);
    }

    #[test]
    fn churn_specs() {
        assert_eq!(parse_churn("none").unwrap(), ChurnSpec::None);
        assert!(matches!(
            parse_churn("uncorrelated:0.001:10").unwrap(),
            ChurnSpec::Uncorrelated { .. }
        ));
        assert!(parse_churn("correlated:2.0:10").is_err(), "rate > 1");
        assert!(parse_churn("correlated:0.1:0").is_err(), "period 0");
        assert!(parse_churn("correlated:0.1").is_err(), "missing field");
        assert!(parse_churn("bogus:0.1:1").is_err());
    }

    #[test]
    fn distribution_specs() {
        assert!(matches!(
            parse_distribution("uniform").unwrap(),
            AttributeDistribution::Uniform { .. }
        ));
        assert!(matches!(
            parse_distribution("normal:170:10").unwrap(),
            AttributeDistribution::Normal { .. }
        ));
        assert!(matches!(
            parse_distribution("exp:0.5").unwrap(),
            AttributeDistribution::Exponential { .. }
        ));
        assert!(parse_distribution("pareto:0:1").is_err(), "invalid scale");
        assert!(parse_distribution("pareto:1").is_err(), "missing shape");
        assert!(parse_distribution("zipf:1").is_err());
    }

    #[test]
    fn analyze_commands() {
        let cmd = parse(&argv("analyze lemma41 --beta 0.5 --epsilon 0.05 --n 10000")).unwrap();
        assert!(matches!(
            cmd,
            Command::Analyze(AnalyzeArgs::Lemma41 { p: None, .. })
        ));
        let cmd = parse(&argv("analyze samples --p 0.45 --d 0.05")).unwrap();
        let Command::Analyze(AnalyzeArgs::Samples { alpha, .. }) = cmd else {
            panic!("not samples")
        };
        assert_eq!(alpha, 0.05);
        assert!(parse(&argv("analyze samples --p 0.45")).is_err());
        assert!(parse(&argv("analyze nothing")).is_err());
    }

    #[test]
    fn slice_of_command() {
        let cmd = parse(&argv("slice-of --slices 100 --rank 0.423")).unwrap();
        assert_eq!(
            cmd,
            Command::SliceOf {
                slices: 100,
                rank: 0.423
            }
        );
        assert!(parse(&argv("slice-of --slices 100")).is_err());
    }

    #[test]
    fn scale_flags() {
        let cmd = parse(&argv(
            "sim --n 100000 --shards 4 --metrics-every 10 --protocol ranking",
        ))
        .unwrap();
        let Command::Sim(a) = cmd else {
            panic!("not sim")
        };
        assert_eq!(a.shards, 4);
        assert_eq!(a.metrics_every, 10);
        let Command::Sim(t) = parse(&argv("sim --time-phases")).unwrap() else {
            panic!("not sim")
        };
        assert!(t.time_phases);
        // Defaults: sequential, every-cycle metrics, no timing breakdown.
        let Command::Sim(d) = parse(&argv("sim")).unwrap() else {
            panic!("not sim")
        };
        assert_eq!(d.shards, 1);
        assert_eq!(d.metrics_every, 1);
        assert!(!d.time_phases);
        // Zero is rejected for both.
        assert!(parse(&argv("sim --shards 0")).is_err());
        assert!(parse(&argv("sim --metrics-every 0")).is_err());
    }

    #[test]
    fn run_scenario_command() {
        let cmd = parse(&argv("run-scenario lying-nodes --json out.json")).unwrap();
        assert_eq!(
            cmd,
            Command::RunScenario(ScenarioArgs {
                name: Some("lying-nodes".into()),
                json: Some("out.json".into()),
                list: false,
                quiet: false,
                trace_out: None,
                trace_jsonl: None,
                trace_sample: 1,
                metrics_out: None,
            })
        );
        let Command::RunScenario(l) = parse(&argv("run-scenario --list")).unwrap() else {
            panic!("not run-scenario")
        };
        assert!(l.list);
        assert_eq!(l.name, None);
        assert!(
            parse(&argv("run-scenario")).is_err(),
            "name or --list required"
        );
        assert!(parse(&argv("run-scenario a b")).is_err(), "one name only");
        assert!(parse(&argv("run-scenario a --frob")).is_err());
    }

    #[test]
    fn net_run_command() {
        let cmd = parse(&argv(
            "net-run --protocol mod-jk --sampler newscast --n 24 --slices 3 \
             --view 6 --period-ms 15 --duration-ms 600 --seed 11 --bootstrap 5 \
             --loss 0.1 --delay-ms 1:4 --crash 0.25:200 --restart 400 \
             --refuse 0.2:100:150 --stall 0.1:300:80 --json out.json --quiet",
        ))
        .unwrap();
        let Command::NetRun(a) = cmd else {
            panic!("not net-run")
        };
        assert_eq!(a.protocol, ProtocolKind::ModJk);
        assert_eq!(a.sampler, SamplerKind::Newscast);
        assert_eq!(a.n, 24);
        assert_eq!(a.slices, 3);
        assert_eq!(a.view, 6);
        assert_eq!(a.period_ms, 15);
        assert_eq!(a.duration_ms, 600);
        assert_eq!(a.seed, 11);
        assert_eq!(a.bootstrap, 5);
        assert_eq!(a.loss, 0.1);
        assert_eq!(a.delay_ms, Some((1, 4)));
        assert_eq!(a.crash, Some((0.25, 200)));
        assert_eq!(a.restart_at_ms, Some(400));
        assert_eq!(a.refuse, Some((0.2, 100, 150)));
        assert_eq!(a.stall, Some((0.1, 300, 80)));
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert!(a.quiet);
    }

    #[test]
    fn net_run_defaults() {
        let Command::NetRun(a) = parse(&argv("net-run")).unwrap() else {
            panic!("not net-run")
        };
        assert_eq!(a, NetRunArgs::default());
        assert_eq!(a.n, 16);
        assert!(a.crash.is_none());
    }

    #[test]
    fn net_run_rejects_bad_chaos_specs() {
        assert!(
            parse(&argv("net-run --crash 0.5")).is_err(),
            "missing at-ms"
        );
        assert!(parse(&argv("net-run --crash 0:100")).is_err(), "zero frac");
        assert!(parse(&argv("net-run --crash 1.5:100")).is_err(), "frac > 1");
        assert!(
            parse(&argv("net-run --restart 400")).is_err(),
            "restart without crash"
        );
        assert!(
            parse(&argv("net-run --crash 0.5:400 --restart 200")).is_err(),
            "restart before crash"
        );
        assert!(
            parse(&argv("net-run --refuse 0.5:100:0")).is_err(),
            "zero window"
        );
        assert!(
            parse(&argv("net-run --stall 0.5:100")).is_err(),
            "missing window"
        );
        assert!(parse(&argv("net-run --delay-ms 5:2")).is_err(), "inverted");
        assert!(parse(&argv("net-run --loss 1.2")).is_err(), "loss > 1");
        assert!(parse(&argv("net-run --n 0")).is_err(), "no nodes");
        assert!(parse(&argv("net-run --n 500")).is_err(), "thread budget");
        assert!(
            parse(&argv("net-run --period-ms 0")).is_err(),
            "zero period"
        );
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&argv("sim --frobnicate 3")).is_err());
        assert!(parse(&argv("teleport")).is_err());
    }

    #[test]
    fn run_is_an_alias_for_sim() {
        assert_eq!(
            parse(&argv("run --n 64 --cycles 10")).unwrap(),
            parse(&argv("sim --n 64 --cycles 10")).unwrap()
        );
    }

    #[test]
    fn observability_flags_parse_on_sim_and_run_scenario() {
        let Command::Sim(a) = parse(&argv(
            "run --n 100 --trace-out t.json --trace-jsonl t.jsonl \
             --trace-sample 8 --metrics-out m.prom",
        ))
        .unwrap() else {
            panic!("not sim")
        };
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert_eq!(a.trace_jsonl.as_deref(), Some("t.jsonl"));
        assert_eq!(a.trace_sample, 8);
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
        assert!(parse(&argv("sim --trace-sample 0")).is_err());

        let Command::RunScenario(s) = parse(&argv(
            "run-scenario baseline-static --trace-out t.json --metrics-out m.prom",
        ))
        .unwrap() else {
            panic!("not run-scenario")
        };
        assert_eq!(s.trace_out.as_deref(), Some("t.json"));
        assert_eq!(s.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(s.trace_sample, 1, "default stride traces every cycle");
    }

    #[test]
    fn net_run_metrics_flags_parse() {
        let Command::NetRun(a) = parse(&argv(
            "net-run --n 8 --metrics-out m.prom --metrics-stream s.jsonl \
             --scrape-every-ms 50",
        ))
        .unwrap() else {
            panic!("not net-run")
        };
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(a.metrics_stream.as_deref(), Some("s.jsonl"));
        assert_eq!(a.scrape_every_ms, 50);
        assert!(parse(&argv("net-run --scrape-every-ms 0")).is_err());
        // The cadence default is sane without the flag.
        let Command::NetRun(d) = parse(&argv("net-run")).unwrap() else {
            panic!("not net-run")
        };
        assert_eq!(d.scrape_every_ms, 100);
    }
}
