//! `dslice-cli` — run distributed-slicing simulations from the shell.
//!
//! ```text
//! dslice-cli sim --protocol ranking --n 2000 --slices 10 --cycles 200
//! dslice-cli sim --protocol mod-jk --concurrency full --csv run.csv
//! dslice-cli analyze lemma41 --beta 0.5 --epsilon 0.05 --n 10000
//! dslice-cli analyze samples --p 0.45 --d 0.05 --alpha 0.05
//! dslice-cli slice-of --slices 100 --rank 0.423
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv).and_then(commands::run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
