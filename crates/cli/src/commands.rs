//! Command execution.

use crate::args::{AnalyzeArgs, ChurnSpec, Command, NetRunArgs, ScenarioArgs, SimArgs, USAGE};
use dslice_analysis as analysis;
use dslice_core::{NodeId, Partition};
use dslice_net::{ChaosPlan, ClusterConfig, FaultPlan, LocalCluster};
use dslice_obs::{export, Registry, TraceConfig, TraceEvent};
use dslice_scenario::library;
use dslice_sim::{ChurnModel, CorrelatedChurn, Engine, SimConfig, UncorrelatedChurn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::time::Duration;

/// The trace configuration the observability flags describe, if tracing
/// was requested at all.
fn trace_config(
    trace_out: &Option<String>,
    trace_jsonl: &Option<String>,
    sample: u64,
) -> Option<TraceConfig> {
    (trace_out.is_some() || trace_jsonl.is_some())
        .then(|| TraceConfig::on().with_sample_every(sample))
}

/// Writes the requested trace artifacts (chrome://tracing and/or JSON
/// lines) from a recorder's retained events.
fn write_trace_files(
    events: &[TraceEvent],
    trace_out: &Option<String>,
    trace_jsonl: &Option<String>,
    quiet: bool,
) -> Result<(), String> {
    if let Some(path) = trace_out {
        std::fs::write(path, export::to_chrome(events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !quiet {
            eprintln!("chrome trace ({} events) -> {path}", events.len());
        }
    }
    if let Some(path) = trace_jsonl {
        std::fs::write(path, export::to_jsonl(events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !quiet {
            eprintln!("trace JSON lines ({} events) -> {path}", events.len());
        }
    }
    Ok(())
}

/// Writes a metrics registry in the Prometheus text format.
fn write_metrics_file(registry: &Registry, path: &str, quiet: bool) -> Result<(), String> {
    std::fs::write(path, registry.to_prometheus())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    if !quiet {
        eprintln!("metrics (Prometheus text) -> {path}");
    }
    Ok(())
}

/// Runs a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Sim(args) => run_sim(args),
        Command::Analyze(args) => run_analyze(args),
        Command::SliceOf { slices, rank } => run_slice_of(slices, rank),
        Command::RunScenario(args) => run_scenario(args),
        Command::NetRun(args) => run_net_run(args),
    }
}

/// How many of `n` nodes a chaos fraction targets (at least one).
fn chaos_count(frac: f64, n: usize) -> usize {
    ((frac * n as f64).ceil() as usize).clamp(1, n)
}

/// Builds the chaos schedule the CLI flags describe: crashes hit the
/// lowest-id nodes, refusal/stall windows the highest-id ones, so the two
/// fault families overlap as little as possible at small fractions.
fn build_chaos(args: &NetRunArgs) -> ChaosPlan {
    let n = args.n;
    let mut chaos = ChaosPlan::new();
    if let Some((frac, at_ms)) = args.crash {
        let k = chaos_count(frac, n);
        chaos = chaos.at_ms(at_ms);
        for i in 0..k {
            chaos = chaos.crash(NodeId::new(i as u64));
        }
        if let Some(restart_at) = args.restart_at_ms {
            chaos = chaos.at_ms(restart_at);
            for i in 0..k {
                chaos = chaos.restart(NodeId::new(i as u64));
            }
        }
    }
    if let Some((frac, at_ms, window_ms)) = args.refuse {
        let k = chaos_count(frac, n);
        chaos = chaos.at_ms(at_ms);
        for i in (n - k)..n {
            chaos = chaos.refuse_for_ms(NodeId::new(i as u64), window_ms);
        }
    }
    if let Some((frac, at_ms, window_ms)) = args.stall {
        let k = chaos_count(frac, n);
        chaos = chaos.at_ms(at_ms);
        for i in (n - k)..n {
            chaos = chaos.stall_for_ms(NodeId::new(i as u64), window_ms);
        }
    }
    chaos
}

fn run_net_run(args: NetRunArgs) -> Result<(), String> {
    let partition = Partition::equal(args.slices).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xA77);
    let attributes = args.distribution.sample_n(args.n, &mut rng);
    let faults = FaultPlan {
        loss: args.loss,
        delay: args
            .delay_ms
            .map(|(lo, hi)| (Duration::from_millis(lo), Duration::from_millis(hi))),
    };
    let chaos = build_chaos(&args);
    let cfg = ClusterConfig {
        sampler: args.sampler,
        faults,
        view_size: args.view,
        period: Duration::from_millis(args.period_ms),
        bootstrap_degree: args.bootstrap,
        seed: args.seed,
        chaos,
        ..ClusterConfig::new(attributes, partition, args.protocol)
    };

    if !args.quiet {
        eprintln!(
            "net-run {} | n = {} | {} slices | view {} | period {} ms | {} ms | seed {}",
            args.protocol.label(),
            args.n,
            args.slices,
            args.view,
            args.period_ms,
            args.duration_ms,
            args.seed,
        );
        if !cfg.chaos.is_empty() {
            eprintln!("chaos plan: {} event(s)", cfg.chaos.len());
        }
    }

    let (report, registry) = tokio::runtime::Runtime::new()
        .map_err(|e| e.to_string())?
        .block_on(async {
            let mut cluster = LocalCluster::spawn(cfg).await?;
            if let Some(path) = &args.metrics_stream {
                cluster.stream_metrics(path.as_str(), Duration::from_millis(args.scrape_every_ms));
            }
            cluster
                .run_for(Duration::from_millis(args.duration_ms))
                .await;
            // Scrape before shutdown: the registry reads live snapshots.
            let registry = args.metrics_out.is_some().then(|| cluster.scrape());
            Ok::<_, std::io::Error>((cluster.shutdown().await, registry))
        })
        .map_err(|e| format!("cluster run failed: {e}"))?;

    if !args.quiet {
        println!(
            "final: {} node(s), SDM {:.3}, accuracy {:.1}%",
            report.nodes.len(),
            report.sdm(),
            report.accuracy() * 100.0
        );
        let t = &report.totals;
        println!(
            "wire:  {} retries, {} timeouts, {} send failures, {} evictions, \
             {} dropped, {} queue drops, peak queue depth {}",
            t.retries,
            t.timeouts,
            t.send_failures,
            t.evictions,
            t.dropped,
            t.queue_drops,
            t.peak_queue_depth
        );
        println!(
            "chaos: {} crash(es), {} chaos kill(s), {} restart(s)",
            t.crashes, t.chaos_kills, t.restarts
        );
        for exit in &report.exits {
            println!(
                "  @{:<6} node {} exited: {:?}{}",
                exit.at_ms,
                exit.id,
                exit.kind,
                if exit.restarted { " (restarted)" } else { "" }
            );
        }
    }
    if let Some(path) = &args.json {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("cluster report JSON -> {path}");
        }
    }
    if let (Some(path), Some(reg)) = (&args.metrics_out, &registry) {
        write_metrics_file(reg, path, args.quiet)?;
    }
    if let Some(path) = &args.metrics_stream {
        if !args.quiet {
            eprintln!("metrics stream (JSON lines) -> {path}");
        }
    }
    Ok(())
}

fn run_scenario(args: ScenarioArgs) -> Result<(), String> {
    if args.list {
        for scenario in library::all() {
            let schedule = scenario.compile().map_err(|e| e.to_string())?;
            println!(
                "{:<24} {:>8} {:>7} cycles {:>6} -> {:<6} {} event(s)",
                scenario.name(),
                scenario.protocol().label(),
                scenario.cycles(),
                schedule.initial_n,
                schedule.final_population(),
                schedule.events.len(),
            );
        }
        return Ok(());
    }
    let name = args.name.as_deref().expect("parser guarantees a name");
    let scenario = library::by_name(name).ok_or_else(|| {
        format!(
            "unknown scenario {name:?} (try: {})",
            library::names().join(", ")
        )
    })?;
    let trace = trace_config(&args.trace_out, &args.trace_jsonl, args.trace_sample);
    let (report, recorder) = match trace {
        Some(tc) => {
            let (report, recorder) = scenario.run_traced(tc).map_err(|e| e.to_string())?;
            (report, Some(recorder))
        }
        None => (scenario.run().map_err(|e| e.to_string())?, None),
    };

    if !args.quiet {
        eprintln!(
            "scenario {} | {} | n0 = {} | {} slices | {} cycles | seed {}",
            report.name,
            report.protocol,
            report.initial_n,
            report.slices,
            report.cycles,
            report.seed,
        );
        for te in &report.events {
            eprintln!("  @{:<5} {}", te.cycle, te.event.label());
        }
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>9} {:>9} {:>6}",
            "cycle", "n", "sdm", "gdm", "accuracy", "honest", "liars"
        );
        for p in &report.trajectory {
            println!(
                "{:>6} {:>6} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>6}",
                p.cycle, p.n, p.sdm, p.gdm, p.accuracy, p.honest_accuracy, p.liars
            );
        }
        if let Some(peak) = report.peak_sdm() {
            println!("peak SDM {:.3} at cycle {}", peak.sdm, peak.cycle);
        }
        println!(
            "final: SDM {:.3}, accuracy {:.1}% (honest {:.1}%), {} liar(s), n = {}",
            report.final_sdm,
            report.final_accuracy * 100.0,
            report.final_honest_accuracy * 100.0,
            report.liars,
            report.final_n,
        );
    }
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("scenario report JSON -> {path}");
        }
    }
    if let Some(recorder) = recorder {
        let events = recorder.into_events();
        write_trace_files(&events, &args.trace_out, &args.trace_jsonl, args.quiet)?;
    }
    if let Some(path) = &args.metrics_out {
        write_metrics_file(&report.metrics_registry(), path, args.quiet)?;
    }
    Ok(())
}

fn run_sim(args: SimArgs) -> Result<(), String> {
    let cfg = SimConfig {
        n: args.n,
        view_size: args.view,
        partition: Partition::equal(args.slices).map_err(|e| e.to_string())?,
        sampler: args.sampler,
        concurrency: args.concurrency,
        latency: args.latency,
        distribution: args.distribution,
        seed: args.seed,
        shards: args.shards,
        metrics_every: args.metrics_every,
        time_phases: args.time_phases,
        ..SimConfig::default()
    };
    cfg.validate().map_err(|e| e.to_string())?;

    let mut engine = Engine::new(cfg, args.protocol).map_err(|e| e.to_string())?;
    let churn: Option<Box<dyn ChurnModel>> = match args.churn {
        ChurnSpec::None => None,
        ChurnSpec::Correlated { rate, period } => Some(Box::new(CorrelatedChurn::new(
            ChurnSpec::schedule(rate, period),
            1.0,
        ))),
        ChurnSpec::Uncorrelated { rate, period } => Some(Box::new(UncorrelatedChurn::new(
            ChurnSpec::schedule(rate, period),
            args.distribution,
        ))),
    };
    if let Some(churn) = churn {
        engine = engine.with_churn(churn);
    }
    if let Some(tc) = trace_config(&args.trace_out, &args.trace_jsonl, args.trace_sample) {
        engine.set_tracer(tc);
    }

    if !args.quiet {
        eprintln!(
            "running {} | n = {} | {} slices | view {} | {} cycles | seed {} | concurrency {}",
            args.protocol.label(),
            args.n,
            args.slices,
            args.view,
            args.cycles,
            args.seed,
            args.concurrency,
        );
    }
    let record = engine.run(args.cycles);

    if !args.quiet {
        let checkpoints: Vec<usize> = [1usize, 5, 10, 25, 50, 100, 250, 500, 1000]
            .into_iter()
            .filter(|&c| c <= args.cycles)
            .collect();
        println!("cycle      n        SDM          GDM   unsuccessful%");
        for &c in &checkpoints {
            let s = &record.cycles[c - 1];
            println!(
                "{:>5} {:>6} {:>10.1} {:>12.3} {:>14.1}",
                s.cycle,
                s.n,
                s.sdm,
                s.gdm,
                s.unsuccessful_swap_pct()
            );
        }
        if checkpoints.last() != Some(&args.cycles) {
            let s = record.cycles.last().expect("at least one cycle");
            println!(
                "{:>5} {:>6} {:>10.1} {:>12.3} {:>14.1}",
                s.cycle,
                s.n,
                s.sdm,
                s.gdm,
                s.unsuccessful_swap_pct()
            );
        }
    }

    if !args.quiet {
        println!("\nSDM trajectory: {}", sparkline(&record));
        println!(
            "final: SDM {:.1}, GDM {:.3}, accuracy {:.1}%",
            record.final_sdm().unwrap_or(0.0),
            record.final_gdm().unwrap_or(0.0),
            engine.accuracy() * 100.0
        );
        let hist = engine.slice_histogram();
        println!(
            "believed slice populations: [{}]",
            hist.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    if args.time_phases && !args.quiet {
        print_phase_breakdown(&record);
    }

    if let Some(path) = &args.csv {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        record
            .write_csv(file)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("per-cycle CSV -> {path}");
        }
    }
    if let Some(path) = &args.json {
        std::fs::write(path, record.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("run record JSON -> {path}");
        }
    }
    if let Some(recorder) = engine.take_recorder() {
        let events = recorder.into_events();
        write_trace_files(&events, &args.trace_out, &args.trace_jsonl, args.quiet)?;
    }
    if let Some(path) = &args.metrics_out {
        write_metrics_file(&record.metrics_registry(), path, args.quiet)?;
    }
    Ok(())
}

/// Prints the mean per-phase wall-clock breakdown of a timed run.
fn print_phase_breakdown(record: &dslice_sim::RunRecord) {
    let mut total = dslice_sim::PhaseTimings::default();
    let mut cycles = 0u64;
    for stats in &record.cycles {
        if let Some(t) = &stats.timings {
            total.accumulate(t);
            cycles += 1;
        }
    }
    if cycles == 0 {
        return;
    }
    let grand = total.total_ns().max(1);
    println!("\nper-phase cost (mean over {cycles} cycles):");
    for (name, ns) in total.rows() {
        println!(
            "  {name:<10} {:>10.1} µs/cycle {:>5.1}%",
            ns as f64 / 1000.0 / cycles as f64,
            100.0 * ns as f64 / grand as f64
        );
    }
    println!(
        "  {:<10} {:>10.1} µs/cycle",
        "total",
        grand as f64 / 1000.0 / cycles as f64
    );
}

/// Renders the run's SDM trajectory as a unicode sparkline (log-scaled,
/// downsampled to at most 60 columns).
fn sparkline(record: &dslice_sim::RunRecord) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let sdm: Vec<f64> = record.cycles.iter().map(|c| c.sdm).collect();
    if sdm.is_empty() {
        return String::new();
    }
    // Downsample by taking bucket means.
    let cols = sdm.len().min(60);
    let bucket = sdm.len().div_ceil(cols);
    let samples: Vec<f64> = sdm
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let logs: Vec<f64> = samples.iter().map(|v| (v + 1.0).ln()).collect();
    let max = logs.iter().cloned().fold(f64::MIN, f64::max);
    let min = logs.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-9);
    logs.iter()
        .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

fn run_analyze(args: AnalyzeArgs) -> Result<(), String> {
    match args {
        AnalyzeArgs::Lemma41 {
            beta,
            epsilon,
            n,
            p,
        } => {
            if !(beta > 0.0 && beta <= 1.0) {
                return Err(format!("--beta must lie in (0, 1], got {beta}"));
            }
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(format!("--epsilon must lie in (0, 1), got {epsilon}"));
            }
            if n == 0 {
                return Err("--n must be positive".into());
            }
            let p_min = analysis::min_slice_length(beta, epsilon, n);
            println!("Lemma 4.1  (β = {beta}, ε = {epsilon}, n = {n})");
            println!("  minimal slice length for the (1±{beta})·np guarantee: p ≥ {p_min:.6}");
            println!(
                "  i.e. at most {} equal slices at this population",
                if p_min <= 1.0 {
                    ((1.0 / p_min).floor() as usize).max(1).to_string()
                } else {
                    "0 (population too small)".to_string()
                }
            );
            if let Some(p) = p {
                if !(p > 0.0 && p <= 1.0) {
                    return Err(format!("--p must lie in (0, 1], got {p}"));
                }
                let bound = analysis::deviation_probability_bound(beta, n, p);
                let pop = analysis::expected_slice_population(n, p);
                println!("  slice of length p = {p}:");
                println!("    Pr[|X − np| ≥ βnp] ≤ {bound:.6}");
                println!(
                    "    E[X] = {:.1}, σ = {:.2}, relative deviation ≈ {:.4}",
                    pop.mean, pop.std_dev, pop.relative_deviation
                );
                println!(
                    "    premise {}",
                    if p >= p_min { "HOLDS" } else { "does NOT hold" }
                );
            }
            Ok(())
        }
        AnalyzeArgs::Samples { p, d, alpha } => {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("--p must lie in [0, 1], got {p}"));
            }
            if d <= 0.0 {
                return Err(format!("--d must be positive, got {d}"));
            }
            if !(alpha > 0.0 && alpha < 1.0) {
                return Err(format!("--alpha must lie in (0, 1), got {alpha}"));
            }
            let k = analysis::required_samples(p, d, alpha);
            let z = analysis::z_alpha_2(alpha);
            println!("Theorem 5.1  (p̂ = {p}, d = {d}, α = {alpha})");
            println!("  Z_α/2 = {z:.4}");
            println!(
                "  messages required for a {:.0}%-confident slice estimate: k ≥ {k}",
                (1.0 - alpha) * 100.0
            );
            println!(
                "  sliding-window memory at 1 bit/sample: {:.2} kB",
                k as f64 / 8.0 / 1000.0
            );
            Ok(())
        }
        AnalyzeArgs::Population { n, p } => {
            if n == 0 {
                return Err("--n must be positive".into());
            }
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("--p must lie in (0, 1], got {p}"));
            }
            let pop = analysis::expected_slice_population(n, p);
            let (exact, bound) = analysis::even_split_probability(n);
            println!("Slice population  (n = {n}, p = {p})   [§4.4]");
            println!("  E[X] = {:.1}", pop.mean);
            println!("  σ(X) = {:.2}", pop.std_dev);
            println!(
                "  relative expected deviation ≈ {:.4}",
                pop.relative_deviation
            );
            println!("  P[even 2-way split of n] = {exact:.6} (bound √(2/nπ) = {bound:.6})");
            Ok(())
        }
    }
}

fn run_slice_of(slices: usize, rank: f64) -> Result<(), String> {
    let partition = Partition::equal(slices).map_err(|e| e.to_string())?;
    if !(rank > 0.0 && rank <= 1.0) {
        return Err(format!("--rank must lie in (0, 1], got {rank}"));
    }
    let idx = partition.slice_of(rank);
    let slice = partition.slice(idx).expect("index in range");
    println!(
        "rank {rank} -> slice {idx} = {slice} (distance to closest boundary: {:.4})",
        partition.boundary_distance(rank)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn help_runs() {
        run(Command::Help).unwrap();
    }

    #[test]
    fn tiny_sim_runs_end_to_end() {
        let cmd = parse(&argv(
            "sim --protocol ranking --n 60 --slices 4 --view 5 --cycles 5 --quiet",
        ))
        .unwrap();
        run(cmd).unwrap();
    }

    #[test]
    fn sim_with_churn_and_outputs() {
        let dir = std::env::temp_dir();
        let csv = dir.join("dslice_cli_test.csv");
        let json = dir.join("dslice_cli_test.json");
        let cmd = parse(&argv(&format!(
            "sim --protocol mod-jk --n 60 --slices 4 --view 5 --cycles 5 --quiet \
             --churn correlated:0.01:2 --csv {} --json {}",
            csv.display(),
            json.display()
        )))
        .unwrap();
        run(cmd).unwrap();
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(csv_text.starts_with("cycle,n,sdm"));
        let json_text = std::fs::read_to_string(&json).unwrap();
        assert!(json_text.contains("\"label\": \"mod-jk\""));
        let _ = std::fs::remove_file(csv);
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn timed_sim_prints_phase_breakdown() {
        let cmd = parse(&argv(
            "sim --protocol ranking --n 80 --slices 4 --view 5 --cycles 6 --time-phases",
        ))
        .unwrap();
        run(cmd).unwrap();
    }

    #[test]
    fn analyze_commands_run() {
        run(parse(&argv(
            "analyze lemma41 --beta 0.5 --epsilon 0.05 --n 10000 --p 0.01",
        ))
        .unwrap())
        .unwrap();
        run(parse(&argv("analyze samples --p 0.45 --d 0.05")).unwrap()).unwrap();
        run(parse(&argv("analyze population --n 10000 --p 0.1")).unwrap()).unwrap();
    }

    #[test]
    fn analyze_rejects_bad_domains() {
        assert!(
            run(parse(&argv("analyze lemma41 --beta 2 --epsilon 0.05 --n 10")).unwrap()).is_err()
        );
        assert!(run(parse(&argv("analyze samples --p 2 --d 0.05")).unwrap()).is_err());
        assert!(run(parse(&argv("analyze samples --p 0.4 --d -1")).unwrap()).is_err());
        assert!(run(parse(&argv("analyze population --n 0 --p 0.1")).unwrap()).is_err());
    }

    #[test]
    fn run_scenario_lists_and_rejects_unknown_names() {
        run(parse(&argv("run-scenario --list")).unwrap()).unwrap();
        let err = run(parse(&argv("run-scenario no-such-scenario")).unwrap()).unwrap_err();
        assert!(err.contains("unknown scenario"));
        assert!(err.contains("lying-nodes"), "error lists the library");
    }

    #[test]
    fn tiny_net_run_with_chaos_writes_report() {
        let json = std::env::temp_dir().join("dslice_cli_net_run_test.json");
        let cmd = parse(&argv(&format!(
            "net-run --n 6 --slices 2 --view 4 --period-ms 10 --duration-ms 250 \
             --crash 0.2:60 --restart 140 --quiet --json {}",
            json.display()
        )))
        .unwrap();
        run(cmd).unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"totals\""));
        // ceil(0.2 * 6) = 2 nodes crash and restart.
        assert!(text.contains("\"chaos_kills\": 2"), "report: {text}");
        assert!(text.contains("\"restarts\": 2"), "report: {text}");
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn slice_of_runs_and_validates() {
        run(parse(&argv("slice-of --slices 100 --rank 0.423")).unwrap()).unwrap();
        assert!(run(parse(&argv("slice-of --slices 100 --rank 1.5")).unwrap()).is_err());
        assert!(run(parse(&argv("slice-of --slices 0 --rank 0.5")).unwrap()).is_err());
    }
}
