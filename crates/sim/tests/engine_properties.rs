//! Property tests for the scale engine: sampling, slab aliasing, churn
//! arithmetic, and the membership exchange schedule.
//!
//! Invariants the slab/stream/shard rework must never break:
//!
//! * the per-node entry sampler never hands a node itself or a duplicate;
//! * slot reuse under arbitrary churn sequences never aliases two live
//!   nodes (every live id maps to exactly one slot, every slot to one id);
//! * the reported population always matches the churn-plan arithmetic;
//! * the schedule-then-execute membership phase schedules at most one
//!   exchange per initiator per cycle, never places a node in two pairs of
//!   one conflict-free batch, and only pairs nodes alive at schedule time.

use dslice_core::{NodeId, NodeSlab, Partition};
use dslice_sim::churn::{ChurnModel, ChurnPlan, ChurnSchedule};
use dslice_sim::{
    AttributeDistribution, Engine, ProtocolKind, SamplerKind, SimConfig, UncorrelatedChurn,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn cfg(n: usize, seed: u64) -> SimConfig {
    SimConfig {
        n,
        view_size: 8,
        partition: Partition::equal(4).unwrap(),
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `random_entries` (via the engine's debug hook) never yields the
    /// owner and never yields the same node twice, for any owner, any
    /// requested count and any population size.
    #[test]
    fn sampled_entries_have_no_owner_and_no_duplicates(
        n in 1usize..80,
        owner_raw in 0u64..100,
        count in 0usize..30,
        seed in 0u64..1000,
    ) {
        let mut engine = Engine::new(cfg(n, seed), ProtocolKind::Ranking).unwrap();
        let owner = NodeId::new(owner_raw);
        let entries = engine.debug_random_entries(owner, count);
        prop_assert!(entries.len() <= count.min(n));
        let mut seen = HashSet::new();
        for e in &entries {
            prop_assert!(e.id != owner, "sampler handed the owner to itself");
            prop_assert!(seen.insert(e.id), "duplicate entry for {}", e.id);
        }
        // When the pool allows it, the sampler fills the full request.
        let headroom = if owner_raw < n as u64 { n - 1 } else { n };
        prop_assert_eq!(entries.len(), count.min(headroom));
    }

    /// Slot reuse never aliases: after an arbitrary interleaving of
    /// inserts and removes, every live id owns exactly one slot and no two
    /// live ids share one.
    #[test]
    fn slab_slot_reuse_never_aliases_live_nodes(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        let mut slab: NodeSlab<u64> = NodeSlab::new();
        let mut live: HashSet<u64> = HashSet::new();
        for (raw, insert) in ops {
            let id = NodeId::new(raw);
            if insert {
                if !live.contains(&raw) {
                    slab.insert(id, raw);
                    live.insert(raw);
                }
            } else if live.remove(&raw) {
                prop_assert_eq!(slab.remove(id), Some(raw));
            }
            prop_assert_eq!(slab.len(), live.len());
        }
        // Every live id is stored under its own slot, slots are unique,
        // and each slot's payload is the id that indexes it.
        let mut slots_seen = HashSet::new();
        for &raw in &live {
            let id = NodeId::new(raw);
            let slot = slab.slot_of(id).expect("live id must have a slot");
            prop_assert!(slots_seen.insert(slot), "slot {} aliased", slot);
            prop_assert_eq!(slab.get(id).copied(), Some(raw), "payload mismatch");
        }
        // And iteration agrees with the index.
        let iterated: HashSet<u64> = slab.ids().map(|i| i.as_u64()).collect();
        prop_assert_eq!(iterated, live);
    }

    /// The engine's reported population always equals
    /// `initial + Σ joined − Σ left`, and per-cycle stats agree with the
    /// live count, under arbitrary churn rates/periods.
    #[test]
    fn population_matches_churn_arithmetic(
        n in 2usize..120,
        rate in 0.0f64..0.3,
        period in 1usize..4,
        cycles in 1usize..12,
        seed in 0u64..1000,
    ) {
        let churn = UncorrelatedChurn::new(
            ChurnSchedule { rate, period, stop_after: None },
            AttributeDistribution::default(),
        );
        let mut engine = Engine::new(cfg(n, seed), ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(churn));
        let record = engine.run(cycles);
        let mut expected = n as i64;
        for stats in &record.cycles {
            expected += stats.joined as i64 - stats.left as i64;
            prop_assert_eq!(stats.n as i64, expected, "cycle {} population", stats.cycle);
        }
        prop_assert_eq!(engine.population() as i64, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The membership exchange schedule is sound for every gossiping
    /// substrate, population size and seed, with churn stirring the slots:
    /// every node initiates at most one exchange per cycle, no node appears
    /// twice within one conflict-free batch, scheduled partners are alive
    /// at schedule time, and nobody exchanges with themselves.
    #[test]
    fn exchange_schedule_is_sound(
        n in 2usize..150,
        seed in 0u64..1000,
        sampler_idx in 0usize..3,
        churn_rate in 0.0f64..0.2,
        cycles in 1usize..4,
    ) {
        let mut cfg = cfg(n, seed);
        cfg.sampler = [SamplerKind::Cyclon, SamplerKind::Newscast, SamplerKind::Lpbcast]
            [sampler_idx];
        let churn = UncorrelatedChurn::new(
            ChurnSchedule { rate: churn_rate, period: 1, stop_after: None },
            AttributeDistribution::default(),
        );
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(churn));
        engine.debug_record_schedule(true);
        for _ in 0..cycles {
            engine.step();
            let schedule = engine.debug_last_schedule().to_vec();
            // Churn only happens at cycle start, so the population right
            // after the step IS the population at schedule time.
            let alive: HashSet<u64> =
                engine.snapshot().iter().map(|&(id, _, _)| id.as_u64()).collect();
            let mut initiators = HashSet::new();
            let mut batch_members: std::collections::HashMap<usize, HashSet<u64>> =
                std::collections::HashMap::new();
            for &(initiator, partner, batch) in &schedule {
                prop_assert!(initiator != partner, "self-exchange scheduled");
                prop_assert!(
                    initiators.insert(initiator),
                    "node {} initiates twice in one cycle", initiator
                );
                prop_assert!(alive.contains(&initiator), "dead initiator {}", initiator);
                prop_assert!(
                    alive.contains(&partner),
                    "partner {} not alive at schedule time", partner
                );
                let members = batch_members.entry(batch).or_default();
                prop_assert!(
                    members.insert(initiator),
                    "node {} twice in batch {}", initiator, batch
                );
                prop_assert!(
                    members.insert(partner),
                    "node {} twice in batch {}", partner, batch
                );
            }
        }
    }

    /// The oracle substrate never schedules pairwise exchanges.
    #[test]
    fn oracle_schedules_no_exchanges(n in 2usize..80, seed in 0u64..500) {
        let mut config = cfg(n, seed);
        config.sampler = SamplerKind::UniformOracle;
        let mut engine = Engine::new(config, ProtocolKind::Ranking).unwrap();
        engine.debug_record_schedule(true);
        engine.step();
        prop_assert!(engine.debug_last_schedule().is_empty());
    }
}

/// A churn model driven by an explicit per-cycle script of
/// `(leave_count, join_count)` — lets the property below force pathological
/// interleavings (mass exodus, flash crowd, full replacement).
struct ScriptedChurn {
    script: Vec<(usize, usize)>,
}

impl ChurnModel for ScriptedChurn {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, dslice_core::Attribute)],
        _rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        let Some(&(leave, join)) = self.script.get(cycle - 1) else {
            return ChurnPlan::quiet();
        };
        // Deterministically remove the lowest-id nodes.
        let mut ids: Vec<NodeId> = population.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        let leavers: Vec<NodeId> = ids
            .into_iter()
            .take(leave.min(population.len().saturating_sub(1)))
            .collect();
        let joiners = (0..join)
            .map(|k| dslice_core::Attribute::new(0.1 + k as f64).unwrap())
            .collect();
        ChurnPlan { leavers, joiners }
    }

    fn label(&self) -> &'static str {
        "scripted"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under scripted mass churn (up to near-full turnover per cycle) the
    /// slab never aliases: `debug_views` reports each live node exactly
    /// once and the population follows the script.
    #[test]
    fn scripted_mass_churn_never_aliases_views(
        script in proptest::collection::vec((0usize..40, 0usize..40), 1..8),
        seed in 0u64..500,
    ) {
        let n = 50;
        let mut engine = Engine::new(cfg(n, seed), ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(ScriptedChurn { script: script.clone() }));
        let record = engine.run(script.len());
        let views = engine.debug_views();
        prop_assert_eq!(views.len(), engine.population(), "one view row per live node");
        let owners: HashSet<u64> = views.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(owners.len(), views.len(), "duplicate owner row");
        for stats in &record.cycles {
            prop_assert!(stats.n >= 1, "population must never empty out");
        }
    }
}
