//! Per-node deterministic RNG streams.
//!
//! The engine's scale architecture gives every node its **own** random
//! stream for the active phase of every cycle, derived purely from
//! `(run seed, node id, cycle, salt)`. Two consequences:
//!
//! * active steps no longer contend on one shared `StdRng`, so the active
//!   phase can be partitioned across worker threads with **no** ordering
//!   sensitivity — any shard count consumes exactly the same per-node
//!   streams and therefore produces byte-identical runs;
//! * the draws a node makes are independent of how many draws other nodes
//!   make, so adding a protocol that samples more (or less) does not
//!   perturb the streams of unrelated nodes.
//!
//! The generator is SplitMix64 — a counter-based stream with a 64-bit state
//! that passes BigCrush, is trivially seedable from a hash of the key
//! tuple, and costs a handful of ALU ops per draw. It implements the
//! vendored [`rand::RngCore`], so protocol code is oblivious to which
//! generator drives it.

use rand::RngCore;

/// One SplitMix64 step: advance the Weyl sequence, then mix.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based SplitMix64 stream keyed by `(seed, node, cycle, salt)`.
///
/// Distinct key tuples yield statistically independent streams; equal key
/// tuples yield identical streams, on every platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeRng {
    state: u64,
}

impl NodeRng {
    /// Derives the stream for `node` at `cycle` under the run `seed`.
    ///
    /// `salt` separates independent stream *domains* within one
    /// `(node, cycle)` pair — e.g. the engine uses salt 0 for the active
    /// step and salt 1 for the atomic-exchange replay (see the engine
    /// docs). The key tuple is mixed through SplitMix64 itself, so
    /// neighboring ids/cycles land in unrelated states.
    pub fn for_node(seed: u64, node: u64, cycle: u64, salt: u64) -> Self {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        s ^= node.wrapping_mul(0xA076_1D64_78BD_642F);
        state ^= splitmix64(&mut s);
        s ^= cycle.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        state ^= splitmix64(&mut s);
        s ^= salt.wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
        state ^= splitmix64(&mut s);
        NodeRng { state }
    }
}

impl RngCore for NodeRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_stream() {
        let mut a = NodeRng::for_node(42, 7, 3, 0);
        let mut b = NodeRng::for_node(42, 7, 3, 0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn any_key_component_separates_streams() {
        let base = NodeRng::for_node(1, 2, 3, 0);
        for variant in [
            NodeRng::for_node(9, 2, 3, 0),
            NodeRng::for_node(1, 9, 3, 0),
            NodeRng::for_node(1, 2, 9, 0),
            NodeRng::for_node(1, 2, 3, 9),
        ] {
            let (mut x, mut y) = (base.clone(), variant);
            let same = (0..8).all(|_| x.next_u64() == y.next_u64());
            assert!(!same, "streams must diverge when any key part differs");
        }
    }

    #[test]
    fn unit_draws_look_uniform() {
        // Cheap sanity: across many nodes, first draws cover the unit
        // interval roughly evenly (catching e.g. a constant-state bug).
        let mut buckets = [0usize; 10];
        let n = 10_000u64;
        for node in 0..n {
            let mut rng = NodeRng::for_node(0xD51CE, node, 1, 0);
            let v: f64 = rng.gen();
            buckets[(v * 10.0) as usize % 10] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "bucket {i} holds {count} of {n}"
            );
        }
    }

    #[test]
    fn adjacent_cycles_are_uncorrelated() {
        // The same node's streams across consecutive cycles must not be
        // shifted copies of each other.
        let a: Vec<u64> = {
            let mut r = NodeRng::for_node(5, 10, 1, 0);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = NodeRng::for_node(5, 10, 2, 0);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert!(a.iter().all(|v| !b.contains(v)), "overlapping outputs");
    }
}
