//! Multi-cycle message latency — generalizing §4.5.2 beyond one cycle.
//!
//! The paper's concurrency model keeps every message within its sending
//! cycle (an *overlapping* message is merely reordered to the end of the
//! cycle). Real wide-area latencies can exceed a gossip period entirely —
//! the regime where the paper's "by the time a message is received this
//! message has become useless" observation bites hardest, because the
//! proposer may have swapped several times before the proposal lands.
//!
//! [`LatencyModel`] assigns each protocol message a whole-cycle delay. A
//! message with delay `d ≥ 1` is held in flight and delivered at the start
//! of cycle `sent + d` (in random order, before anyone's active step); a
//! delay of 0 falls back to the [`Concurrency`](crate::Concurrency)
//! routing, so `LatencyModel::Zero` reproduces the paper's model exactly.
//! Delivery semantics are unchanged: late swap proposals resolve through
//! the same transactional path and surface as unsuccessful swaps when
//! stale.

use dslice_core::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Distribution of per-message delays, in whole cycles.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum LatencyModel {
    /// No cross-cycle latency: the paper's cycle model (default).
    #[default]
    Zero,
    /// Every message is delayed by exactly `cycles`.
    Fixed {
        /// The delay applied to every message.
        cycles: u32,
    },
    /// Uniform delay in `[min, max]` cycles (inclusive).
    Uniform {
        /// Smallest possible delay.
        min: u32,
        /// Largest possible delay.
        max: u32,
    },
    /// Geometric delay: each cycle the message fails to arrive with
    /// probability `p` (so the mean delay is `p/(1−p)` cycles). Models a
    /// heavy-tailed long-haul link mix.
    Geometric {
        /// Per-cycle probability of *not* arriving yet, in `[0, 1)`.
        p: f64,
    },
}

impl LatencyModel {
    /// Validates the model's parameters: a [`Uniform`](LatencyModel::Uniform)
    /// range must satisfy `min ≤ max` (an inverted range would silently
    /// collapse to `min` in [`sample`](LatencyModel::sample)), and a
    /// [`Geometric`](LatencyModel::Geometric) probability must be a finite
    /// value in `[0, 1)`. `min == max` is a valid degenerate (constant)
    /// uniform range.
    pub fn validate(self) -> Result<()> {
        match self {
            LatencyModel::Uniform { min, max } if min > max => Err(Error::InvalidLatency(format!(
                "uniform range requires min ≤ max, got {min}-{max}"
            ))),
            LatencyModel::Geometric { p } if !p.is_finite() || !(0.0..1.0).contains(&p) => Err(
                Error::InvalidLatency(format!("geometric probability must lie in [0, 1), got {p}")),
            ),
            _ => Ok(()),
        }
    }

    /// Draws the delay for one message, in cycles (0 = within-cycle).
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u32 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed { cycles } => cycles,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
            LatencyModel::Geometric { p } => {
                let p = p.clamp(0.0, 1.0 - 1e-9);
                let mut d = 0;
                while rng.gen::<f64>() < p && d < 1_000 {
                    d += 1;
                }
                d
            }
        }
    }

    /// The mean delay in cycles.
    pub fn mean(self) -> f64 {
        match self {
            LatencyModel::Zero => 0.0,
            LatencyModel::Fixed { cycles } => cycles as f64,
            LatencyModel::Uniform { min, max } => (min as f64 + max as f64) / 2.0,
            LatencyModel::Geometric { p } => {
                let p = p.clamp(0.0, 1.0 - 1e-9);
                p / (1.0 - p)
            }
        }
    }

    /// Label used in experiment output.
    pub fn label(self) -> String {
        match self {
            LatencyModel::Zero => "zero".to_string(),
            LatencyModel::Fixed { cycles } => format!("fixed:{cycles}"),
            LatencyModel::Uniform { min, max } => format!("uniform:{min}-{max}"),
            LatencyModel::Geometric { p } => format!("geometric:{p}"),
        }
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_never_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(LatencyModel::Zero.sample(&mut rng), 0);
        }
        assert_eq!(LatencyModel::Zero.mean(), 0.0);
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert_eq!(LatencyModel::Fixed { cycles: 3 }.sample(&mut rng), 3);
        }
        assert_eq!(LatencyModel::Fixed { cycles: 3 }.mean(), 3.0);
    }

    #[test]
    fn uniform_stays_in_range_and_centers() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::Uniform { min: 1, max: 5 };
        let mut sum = 0u64;
        for _ in 0..10_000 {
            let d = m.sample(&mut rng);
            assert!((1..=5).contains(&d));
            sum += d as u64;
        }
        let mean = sum as f64 / 10_000.0;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        // Degenerate range.
        assert_eq!(LatencyModel::Uniform { min: 4, max: 4 }.sample(&mut rng), 4);
    }

    #[test]
    fn geometric_mean_matches_formula() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::Geometric { p: 0.5 };
        let sum: u64 = (0..20_000).map(|_| m.sample(&mut rng) as u64).sum();
        let mean = sum as f64 / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} vs 1.0");
    }

    #[test]
    fn validate_rejects_inverted_uniform_range() {
        assert!(LatencyModel::Uniform { min: 5, max: 2 }.validate().is_err());
        assert!(LatencyModel::Geometric { p: 1.0 }.validate().is_err());
        assert!(LatencyModel::Geometric { p: -0.1 }.validate().is_err());
        assert!(LatencyModel::Geometric { p: f64::NAN }.validate().is_err());
        // Degenerate-but-consistent parameterizations stay valid.
        assert!(LatencyModel::Uniform { min: 4, max: 4 }.validate().is_ok());
        assert!(LatencyModel::Uniform { min: 0, max: 3 }.validate().is_ok());
        assert!(LatencyModel::Geometric { p: 0.0 }.validate().is_ok());
        assert!(LatencyModel::Zero.validate().is_ok());
        assert!(LatencyModel::Fixed { cycles: 7 }.validate().is_ok());
    }

    #[test]
    fn labels() {
        assert_eq!(LatencyModel::Zero.to_string(), "zero");
        assert_eq!(LatencyModel::Fixed { cycles: 2 }.to_string(), "fixed:2");
        assert_eq!(
            LatencyModel::Uniform { min: 0, max: 3 }.to_string(),
            "uniform:0-3"
        );
        assert_eq!(LatencyModel::default(), LatencyModel::Zero);
    }
}
