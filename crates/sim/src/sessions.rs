//! Session-based and burst churn models beyond §5.3.3's two scenarios.
//!
//! The paper tunes its churn against the measurements of Stutzbach & Rejaie
//! (*Understanding churn in peer-to-peer networks*, IMC 2006 — ref \[17\]):
//! session durations in deployed P2P systems are heavy-tailed and fit a
//! **Weibull** distribution with shape parameter well below 1 (many short
//! sessions, a fat tail of long ones; footnote 3 of the paper works out the
//! per-cycle rates from those curves). Two additional models make that
//! regime — and a worst-case mass arrival — directly simulable:
//!
//! * [`SessionChurn`] — every node lives for a Weibull-distributed session;
//!   expired nodes leave and are replaced, keeping the population
//!   stationary. With [`SessionChurn::uptime_attribute`], a joiner's
//!   *attribute* equals its sampled session duration, reproducing the
//!   "attribute = session duration" correlation of §5.3.3 with realistic
//!   (non-adversarial) statistics.
//! * [`FlashCrowd`] — a one-shot mass join and/or leave at a configured
//!   cycle: the regime where a popular event makes a large cohort arrive
//!   (or a failure makes one depart) within a single cycle.

use crate::churn::{ChurnModel, ChurnPlan};
use crate::distributions::AttributeDistribution;
use dslice_core::{Attribute, NodeId};
use rand::Rng;
use std::collections::HashMap;

/// Weibull session-duration sampler (inverse-CDF method).
///
/// `shape < 1` gives the heavy-tailed regime ref \[17\] measures
/// (`shape ≈ 0.4–0.6` in deployed systems); `shape = 1` is exponential.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeibullSessions {
    /// Weibull shape parameter `k > 0`.
    pub shape: f64,
    /// Weibull scale parameter `λ > 0`, in cycles.
    pub scale: f64,
}

impl WeibullSessions {
    /// The heavy-tailed regime of ref \[17\]: shape 0.5, mean ≈ 2·scale.
    pub fn heavy_tailed(scale: f64) -> Self {
        WeibullSessions { shape: 0.5, scale }
    }

    /// Draws one session duration in cycles (≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(self.shape > 0.0 && self.scale > 0.0, "invalid Weibull");
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let d = self.scale * (-u.ln()).powf(1.0 / self.shape);
        d.ceil().max(1.0) as usize
    }

    /// The distribution mean `λ·Γ(1 + 1/k)` (via Stirling-free lgamma).
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~15 significant digits over the range session models use.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Stationary churn driven by per-node session durations.
///
/// Each node, on first sight, is assigned a Weibull session; when the
/// session expires the node leaves and one joiner replaces it. Joiner
/// attributes come from `distribution`, or — with
/// [`uptime_attribute`](Self::uptime_attribute) — equal the joiner's own
/// session duration.
#[derive(Clone, Debug)]
pub struct SessionChurn {
    sessions: WeibullSessions,
    distribution: AttributeDistribution,
    uptime_attribute: bool,
    expiry: HashMap<NodeId, usize>,
    /// Sessions pre-sampled for joiners we created, keyed by nothing yet —
    /// consumed by `expiry` bookkeeping at the next plan call.
    pending_sessions: Vec<usize>,
}

impl SessionChurn {
    /// Creates the model; joiner attributes drawn from `distribution`.
    pub fn new(sessions: WeibullSessions, distribution: AttributeDistribution) -> Self {
        SessionChurn {
            sessions,
            distribution,
            uptime_attribute: false,
            expiry: HashMap::new(),
            pending_sessions: Vec::new(),
        }
    }

    /// Correlate attribute with dynamics: a joiner's attribute value *is*
    /// its session duration in cycles (the §5.3.3 uptime scenario with
    /// realistic statistics).
    pub fn uptime_attribute(mut self) -> Self {
        self.uptime_attribute = true;
        self
    }

    /// The session sampler in use.
    pub fn sessions(&self) -> WeibullSessions {
        self.sessions
    }
}

impl ChurnModel for SessionChurn {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        let mut rng = rng;

        // Assign sessions to nodes seen for the first time (the initial
        // population, plus the joiners the engine materialized since the
        // last call — those consume the pre-sampled pending sessions so an
        // uptime attribute matches its actual lifetime).
        let mut pending = std::mem::take(&mut self.pending_sessions).into_iter();
        for (id, _) in population {
            if !self.expiry.contains_key(id) {
                let session = pending
                    .next()
                    .unwrap_or_else(|| self.sessions.sample(&mut rng));
                self.expiry.insert(*id, cycle + session);
            }
        }

        // Expired nodes leave.
        let leavers: Vec<NodeId> = population
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| self.expiry.get(id).copied().unwrap_or(usize::MAX) <= cycle)
            .collect();
        for id in &leavers {
            self.expiry.remove(id);
        }

        // Replacements keep the population stationary.
        let mut joiners = Vec::with_capacity(leavers.len());
        for _ in 0..leavers.len() {
            let session = self.sessions.sample(&mut rng);
            let attribute = if self.uptime_attribute {
                Attribute::new(session as f64).expect("finite")
            } else {
                self.distribution.sample(&mut rng)
            };
            self.pending_sessions.push(session);
            joiners.push(attribute);
        }

        ChurnPlan { leavers, joiners }
    }

    fn label(&self) -> &'static str {
        if self.uptime_attribute {
            "sessions-uptime"
        } else {
            "sessions"
        }
    }
}

/// A one-shot mass join and/or leave at a fixed cycle.
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    /// The cycle at which the event fires.
    pub at_cycle: usize,
    /// Fraction of the current population that joins (0 = none).
    pub join_fraction: f64,
    /// Fraction of the current population that leaves (0 = none), drawn
    /// uniformly.
    pub leave_fraction: f64,
    /// Attribute distribution of the joiners.
    pub distribution: AttributeDistribution,
    fired: bool,
}

impl FlashCrowd {
    /// A crowd of `join_fraction`·n nodes arriving at `at_cycle`.
    pub fn joining(
        at_cycle: usize,
        join_fraction: f64,
        distribution: AttributeDistribution,
    ) -> Self {
        FlashCrowd {
            at_cycle,
            join_fraction,
            leave_fraction: 0.0,
            distribution,
            fired: false,
        }
    }

    /// A mass departure of `leave_fraction`·n nodes at `at_cycle`.
    pub fn leaving(at_cycle: usize, leave_fraction: f64) -> Self {
        FlashCrowd {
            at_cycle,
            join_fraction: 0.0,
            leave_fraction,
            distribution: AttributeDistribution::default(),
            fired: false,
        }
    }
}

impl ChurnModel for FlashCrowd {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        if self.fired || cycle != self.at_cycle || population.is_empty() {
            return ChurnPlan::quiet();
        }
        self.fired = true;
        let mut rng = rng;
        let n = population.len();

        let leave_count = ((n as f64 * self.leave_fraction).round() as usize).min(n);
        let leavers: Vec<NodeId> =
            rand::seq::SliceRandom::choose_multiple(population, &mut rng, leave_count)
                .map(|(id, _)| *id)
                .collect();

        let join_count = (n as f64 * self.join_fraction).round() as usize;
        let joiners = (0..join_count)
            .map(|_| self.distribution.sample(&mut rng))
            .collect();

        ChurnPlan { leavers, joiners }
    }

    fn label(&self) -> &'static str {
        "flash-crowd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> Vec<(NodeId, Attribute)> {
        (0..n)
            .map(|i| (NodeId::new(i as u64), Attribute::new(i as f64).unwrap()))
            .collect()
    }

    #[test]
    fn gamma_matches_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        assert!((gamma(3.0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn weibull_mean_matches_formula() {
        // shape 1 = exponential: mean = scale.
        let exp = WeibullSessions {
            shape: 1.0,
            scale: 50.0,
        };
        assert!((exp.mean() - 50.0).abs() < 1e-9);
        // shape 0.5: mean = scale·Γ(3) = 2·scale.
        let heavy = WeibullSessions::heavy_tailed(50.0);
        assert!((heavy.mean() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn weibull_samples_match_mean_empirically() {
        let w = WeibullSessions::heavy_tailed(30.0);
        let mut rng = StdRng::seed_from_u64(51);
        let trials = 40_000;
        let sum: f64 = (0..trials).map(|_| w.sample(&mut rng) as f64).sum();
        let empirical = sum / trials as f64;
        // Ceil()+max(1) bias the mean up slightly; stay within 5%.
        let rel = (empirical - w.mean()).abs() / w.mean();
        assert!(
            rel < 0.05,
            "empirical mean {empirical:.1} vs {:.1}",
            w.mean()
        );
    }

    #[test]
    fn weibull_is_heavy_tailed_below_shape_one() {
        // Heavy tail: a non-negligible mass of sessions beyond 5× the mean.
        let w = WeibullSessions::heavy_tailed(30.0);
        let mut rng = StdRng::seed_from_u64(53);
        let trials = 20_000;
        let threshold = 5.0 * w.mean();
        let tail = (0..trials)
            .filter(|_| (w.sample(&mut rng) as f64) > threshold)
            .count();
        let fraction = tail as f64 / trials as f64;
        assert!(
            fraction > 0.005,
            "tail mass {fraction:.4} too thin for shape 0.5"
        );
    }

    #[test]
    fn session_churn_is_stationary_and_eventually_replaces_everyone() {
        let mut m = SessionChurn::new(
            WeibullSessions {
                shape: 1.0,
                scale: 10.0,
            },
            AttributeDistribution::default(),
        );
        let mut rng = StdRng::seed_from_u64(55);
        let mut pop = population(100);
        let initial_ids: Vec<NodeId> = pop.iter().map(|(id, _)| *id).collect();
        let mut next_id = 100u64;
        let mut total_left = 0;
        for cycle in 1..=120 {
            let plan = m.plan(cycle, &pop, &mut rng);
            assert_eq!(plan.leavers.len(), plan.joiners.len(), "stationary");
            total_left += plan.leavers.len();
            pop.retain(|(id, _)| !plan.leavers.contains(id));
            for a in plan.joiners {
                pop.push((NodeId::new(next_id), a));
                next_id += 1;
            }
        }
        assert_eq!(pop.len(), 100);
        assert!(
            total_left > 50,
            "mean session 10 ⇒ heavy turnover, saw {total_left}"
        );
        // Essentially all of the initial cohort should be gone by cycle 120.
        let survivors = pop
            .iter()
            .filter(|(id, _)| initial_ids.contains(id))
            .count();
        assert!(survivors < 20, "{survivors} initial nodes still alive");
    }

    #[test]
    fn uptime_attribute_correlates_attribute_with_lifetime() {
        let mut m = SessionChurn::new(
            WeibullSessions {
                shape: 1.0,
                scale: 20.0,
            },
            AttributeDistribution::default(),
        )
        .uptime_attribute();
        assert_eq!(m.label(), "sessions-uptime");
        let mut rng = StdRng::seed_from_u64(57);
        let mut pop = population(50);
        let mut next_id = 50u64;
        // Track each joiner's attribute and eventual lifetime.
        let mut joined_at: HashMap<NodeId, (usize, f64)> = HashMap::new();
        let mut lifetimes: Vec<(f64, usize)> = Vec::new(); // (attribute, observed life)
        for cycle in 1..=400 {
            let plan = m.plan(cycle, &pop, &mut rng);
            for id in &plan.leavers {
                if let Some((start, attr)) = joined_at.remove(id) {
                    lifetimes.push((attr, cycle - start));
                }
            }
            pop.retain(|(id, _)| !plan.leavers.contains(id));
            for a in plan.joiners {
                let id = NodeId::new(next_id);
                next_id += 1;
                joined_at.insert(id, (cycle, a.value()));
                pop.push((id, a));
            }
        }
        assert!(lifetimes.len() > 100, "need churn to measure correlation");
        // The attribute is the *assigned* session; the observed lifetime
        // equals it exactly (give or take the one-cycle plan granularity).
        for &(attr, life) in &lifetimes {
            assert!(
                (life as f64 - attr).abs() <= 1.0,
                "attribute {attr} vs lifetime {life}"
            );
        }
    }

    #[test]
    fn flash_crowd_fires_once() {
        let mut m = FlashCrowd::joining(10, 0.5, AttributeDistribution::default());
        let mut rng = StdRng::seed_from_u64(59);
        let pop = population(100);
        assert!(m.plan(9, &pop, &mut rng).is_quiet());
        let plan = m.plan(10, &pop, &mut rng);
        assert_eq!(plan.joiners.len(), 50);
        assert!(plan.leavers.is_empty());
        assert!(m.plan(10, &pop, &mut rng).is_quiet(), "one-shot");
        assert_eq!(m.label(), "flash-crowd");
    }

    #[test]
    fn mass_departure_leaves_distinct_members() {
        let mut m = FlashCrowd::leaving(5, 0.3);
        let mut rng = StdRng::seed_from_u64(61);
        let pop = population(100);
        let plan = m.plan(5, &pop, &mut rng);
        assert_eq!(plan.leavers.len(), 30);
        assert!(plan.joiners.is_empty());
        let mut ids: Vec<u64> = plan.leavers.iter().map(|id| id.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30, "leavers are distinct population members");
    }
}
