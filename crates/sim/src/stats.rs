//! Per-cycle metrics and run records.
//!
//! The paper's figures plot the slice disorder measure (SDM), the global
//! disorder measure (GDM) and the percentage of unsuccessful swaps against
//! the cycle count. [`CycleStats`] captures all of them (plus message
//! accounting), and [`RunRecord`] bundles a whole run with its configuration
//! for the figure pipeline — serializable to JSON, dumpable as CSV, and
//! exportable as a `dslice_obs` metrics registry.

use dslice_core::protocol::Event;
use dslice_obs::{Registry, COUNT_BUCKETS};
use serde::{Deserialize, Serialize, Value};
use std::io::{self, Write};

/// Counters of protocol events within one cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounters {
    /// Swap proposals (`REQ`) sent.
    pub swaps_proposed: u64,
    /// Swap applications (either side).
    pub swaps_applied: u64,
    /// Swap messages that arrived stale (unsuccessful swaps, §4.5.2).
    pub swaps_useless: u64,
    /// `UPD` attribute samples sent (ranking algorithm).
    pub updates_sent: u64,
    /// Attribute samples folded into estimates.
    pub samples_absorbed: u64,
    /// Swap proposals abandoned unresolved (liveness-tracking ordering
    /// variant only; always 0 for the paper-faithful protocols).
    pub swaps_abandoned: u64,
    /// Attribute samples rejected by outlier-robust admission (defended
    /// ranking variants only; always 0 otherwise).
    pub samples_rejected: u64,
}

impl EventCounters {
    /// Folds a protocol event in.
    pub fn record(&mut self, event: Event) {
        match event {
            Event::SwapProposed => self.swaps_proposed += 1,
            Event::SwapApplied => self.swaps_applied += 1,
            Event::SwapUseless => self.swaps_useless += 1,
            Event::UpdateSent => self.updates_sent += 1,
            Event::SampleAbsorbed => self.samples_absorbed += 1,
            Event::SwapAbandoned => self.swaps_abandoned += 1,
            Event::SampleRejected => self.samples_rejected += 1,
        }
    }

    /// Percentage of swap messages that were unsuccessful (Fig. 4(c)):
    /// `100 · useless / (useless + applied)`, or 0 when no swap message
    /// was processed.
    pub fn unsuccessful_swap_pct(&self) -> f64 {
        let total = self.swaps_useless + self.swaps_applied;
        if total == 0 {
            0.0
        } else {
            100.0 * self.swaps_useless as f64 / total as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &EventCounters) {
        self.swaps_proposed += other.swaps_proposed;
        self.swaps_applied += other.swaps_applied;
        self.swaps_useless += other.swaps_useless;
        self.updates_sent += other.updates_sent;
        self.samples_absorbed += other.samples_absorbed;
        self.swaps_abandoned += other.swaps_abandoned;
        self.samples_rejected += other.samples_rejected;
    }
}

/// Wall-clock cost of each engine phase within one cycle, in nanoseconds.
///
/// Filled only when [`time_phases`](crate::SimConfig::time_phases) is on —
/// timings are host noise, so the determinism contract excludes them: two
/// runs of the same seed produce identical simulated bytes but different
/// timings, which is why they ride in an `Option` the goldens keep `None`.
///
/// Timings were recorded in microseconds before PR 10; nanoseconds stop
/// sub-microsecond phases (churn/drain at small n) from flooring to zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Churn phase: leave/join application, view pruning, rank-cache merge.
    pub churn_ns: u64,
    /// Latency drain: delivery of messages whose cross-cycle delay elapsed.
    pub drain_ns: u64,
    /// Membership phase: exchange scheduling, batching and execution (or
    /// the oracle refill).
    pub membership_ns: u64,
    /// Refresh phase: value-snapshot refresh of every view.
    pub refresh_ns: u64,
    /// Active phase: per-node protocol steps.
    pub active_ns: u64,
    /// Delivery phase plus the end-of-cycle deferred drain.
    pub delivery_ns: u64,
    /// Metrics: SDM/GDM/stability evaluation (on measured cycles).
    pub metrics_ns: u64,
}

impl PhaseTimings {
    /// Sum over all phases, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.churn_ns
            + self.drain_ns
            + self.membership_ns
            + self.refresh_ns
            + self.active_ns
            + self.delivery_ns
            + self.metrics_ns
    }

    /// Adds another cycle's timings into this accumulator (used to average
    /// over a run).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.churn_ns += other.churn_ns;
        self.drain_ns += other.drain_ns;
        self.membership_ns += other.membership_ns;
        self.refresh_ns += other.refresh_ns;
        self.active_ns += other.active_ns;
        self.delivery_ns += other.delivery_ns;
        self.metrics_ns += other.metrics_ns;
    }

    /// The phases as `(name, ns)` rows, for tabular output and tracing.
    pub fn rows(&self) -> [(&'static str, u64); 7] {
        [
            ("churn", self.churn_ns),
            ("drain", self.drain_ns),
            ("membership", self.membership_ns),
            ("refresh", self.refresh_ns),
            ("active", self.active_ns),
            ("delivery", self.delivery_ns),
            ("metrics", self.metrics_ns),
        ]
    }

    /// The phases as `(name, µs)` rows — the pre-PR-10 granularity, kept for
    /// one deprecation cycle (`scale_bench` still emits `phase_us`).
    pub fn rows_us(&self) -> [(&'static str, u64); 7] {
        self.rows().map(|(name, ns)| (name, ns / 1000))
    }
}

/// Everything measured at the end of one simulation cycle.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// 1-based cycle number.
    pub cycle: usize,
    /// Live population size after churn.
    pub n: usize,
    /// Slice disorder measure (§4.4) over the live population.
    pub sdm: f64,
    /// Global disorder measure (§4.2) over the live population.
    pub gdm: f64,
    /// Event counters for this cycle.
    pub events: EventCounters,
    /// Messages dropped because their target departed.
    pub dropped_messages: u64,
    /// Nodes that left this cycle.
    pub left: usize,
    /// Nodes that joined this cycle.
    pub joined: usize,
    /// Live nodes whose *believed* slice changed this cycle (the §3.2
    /// stability measure; joiners count from their second cycle).
    pub slice_changes: usize,
    /// Per-phase wall-clock breakdown (opt-in; `None` unless
    /// [`time_phases`](crate::SimConfig::time_phases) is set).
    pub timings: Option<PhaseTimings>,
}

impl CycleStats {
    /// Percentage of unsuccessful swaps in this cycle.
    pub fn unsuccessful_swap_pct(&self) -> f64 {
        self.events.unsuccessful_swap_pct()
    }
}

/// A complete simulation run: configuration summary plus per-cycle stats.
///
/// Serde is hand-written (not derived) so the aggregate `phase_ns` key is
/// *omitted* when timing was off — run manifests written before PR 10 parse
/// unchanged, and untimed manifests stay byte-identical to the old shape.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Free-form run label (protocol, scenario).
    pub label: String,
    /// Seed the run was driven by.
    pub seed: u64,
    /// Initial population size.
    pub initial_n: usize,
    /// Number of slices.
    pub slices: usize,
    /// View size `c`.
    pub view_size: usize,
    /// Per-cycle measurements, in cycle order.
    pub cycles: Vec<CycleStats>,
    /// Whole-run per-phase wall-clock totals (sum over timed cycles); `None`
    /// unless [`time_phases`](crate::SimConfig::time_phases) was set.
    pub phase_ns: Option<PhaseTimings>,
}

impl Serialize for RunRecord {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("label".to_string(), self.label.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("initial_n".to_string(), self.initial_n.to_value()),
            ("slices".to_string(), self.slices.to_value()),
            ("view_size".to_string(), self.view_size.to_value()),
            ("cycles".to_string(), self.cycles.to_value()),
        ];
        if let Some(t) = &self.phase_ns {
            fields.push(("phase_ns".to_string(), t.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for RunRecord {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("RunRecord: expected map"))?;
        Ok(RunRecord {
            label: String::from_value(serde::__field(m, "label"))?,
            seed: u64::from_value(serde::__field(m, "seed"))?,
            initial_n: usize::from_value(serde::__field(m, "initial_n"))?,
            slices: usize::from_value(serde::__field(m, "slices"))?,
            view_size: usize::from_value(serde::__field(m, "view_size"))?,
            cycles: Vec::from_value(serde::__field(m, "cycles"))?,
            phase_ns: Option::from_value(serde::__field(m, "phase_ns"))?,
        })
    }
}

impl RunRecord {
    /// The last recorded SDM, if any cycle was recorded.
    pub fn final_sdm(&self) -> Option<f64> {
        self.cycles.last().map(|c| c.sdm)
    }

    /// The last recorded GDM.
    pub fn final_gdm(&self) -> Option<f64> {
        self.cycles.last().map(|c| c.gdm)
    }

    /// The first cycle (1-based index into the record) whose SDM is at or
    /// below `threshold`, if any — a convergence-speed summary.
    pub fn cycles_to_reach_sdm(&self, threshold: f64) -> Option<usize> {
        self.cycles
            .iter()
            .find(|c| c.sdm <= threshold)
            .map(|c| c.cycle)
    }

    /// Writes the record as CSV (`cycle,n,sdm,gdm,unsuccessful_pct,…`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(
            w,
            "cycle,n,sdm,gdm,unsuccessful_pct,swaps_proposed,swaps_applied,swaps_useless,updates_sent,dropped,left,joined,slice_changes,swaps_abandoned,samples_rejected"
        )?;
        for c in &self.cycles {
            writeln!(
                w,
                "{},{},{},{},{:.4},{},{},{},{},{},{},{},{},{},{}",
                c.cycle,
                c.n,
                c.sdm,
                c.gdm,
                c.unsuccessful_swap_pct(),
                c.events.swaps_proposed,
                c.events.swaps_applied,
                c.events.swaps_useless,
                c.events.updates_sent,
                c.dropped_messages,
                c.left,
                c.joined,
                c.slice_changes,
                c.events.swaps_abandoned,
                c.events.samples_rejected,
            )?;
        }
        Ok(())
    }

    /// Serializes the record to pretty JSON (the run manifest format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunRecord serializes")
    }

    /// Exports the run under the `dslice_sim_*` metric namespace: final
    /// gauges, whole-run event counters, per-phase timing counters (when
    /// timed), and deterministic per-cycle activity histograms.
    pub fn metrics_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.gauge_set(
            "dslice_sim_population",
            "Live population after the last cycle.",
            self.cycles.last().map_or(self.initial_n, |c| c.n) as f64,
        );
        reg.gauge_set(
            "dslice_sim_cycles",
            "Number of simulated cycles.",
            self.cycles.len() as f64,
        );
        if let Some(sdm) = self.final_sdm() {
            reg.gauge_set("dslice_sim_sdm", "Final slice disorder measure.", sdm);
        }
        if let Some(gdm) = self.final_gdm() {
            reg.gauge_set("dslice_sim_gdm", "Final global disorder measure.", gdm);
        }
        let mut events = EventCounters::default();
        let (mut dropped, mut left, mut joined, mut slice_changes) = (0u64, 0u64, 0u64, 0u64);
        for c in &self.cycles {
            events.merge(&c.events);
            dropped += c.dropped_messages;
            left += c.left as u64;
            joined += c.joined as u64;
            slice_changes += c.slice_changes as u64;
            reg.observe(
                "dslice_sim_swaps_applied_per_cycle",
                "Distribution of swaps applied per cycle.",
                &COUNT_BUCKETS,
                c.events.swaps_applied as f64,
            );
            reg.observe(
                "dslice_sim_updates_per_cycle",
                "Distribution of UPD samples sent per cycle.",
                &COUNT_BUCKETS,
                c.events.updates_sent as f64,
            );
        }
        for (name, help, v) in [
            (
                "dslice_sim_swaps_proposed_total",
                "Swap proposals sent.",
                events.swaps_proposed,
            ),
            (
                "dslice_sim_swaps_applied_total",
                "Swaps applied.",
                events.swaps_applied,
            ),
            (
                "dslice_sim_swaps_useless_total",
                "Stale (unsuccessful) swap messages.",
                events.swaps_useless,
            ),
            (
                "dslice_sim_updates_sent_total",
                "UPD attribute samples sent.",
                events.updates_sent,
            ),
            (
                "dslice_sim_samples_absorbed_total",
                "Attribute samples absorbed.",
                events.samples_absorbed,
            ),
            (
                "dslice_sim_swaps_abandoned_total",
                "Swap proposals abandoned unresolved.",
                events.swaps_abandoned,
            ),
            (
                "dslice_sim_samples_rejected_total",
                "Samples rejected by robust admission.",
                events.samples_rejected,
            ),
            (
                "dslice_sim_dropped_messages_total",
                "Messages dropped (target departed).",
                dropped,
            ),
            ("dslice_sim_left_total", "Nodes that left.", left),
            ("dslice_sim_joined_total", "Nodes that joined.", joined),
            (
                "dslice_sim_slice_changes_total",
                "Believed-slice changes.",
                slice_changes,
            ),
        ] {
            reg.counter_add(name, help, v);
        }
        if let Some(t) = &self.phase_ns {
            for (phase, ns) in t.rows() {
                reg.counter_add(
                    &dslice_obs::labeled("dslice_sim_phase_ns_total", "phase", phase),
                    "Wall-clock nanoseconds spent per engine phase.",
                    ns,
                );
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycle: usize, sdm: f64) -> CycleStats {
        CycleStats {
            cycle,
            n: 100,
            sdm,
            gdm: sdm / 2.0,
            events: EventCounters::default(),
            dropped_messages: 0,
            left: 0,
            joined: 0,
            slice_changes: 0,
            timings: None,
        }
    }

    fn record(cycles: Vec<CycleStats>) -> RunRecord {
        RunRecord {
            label: "test".into(),
            seed: 7,
            initial_n: 100,
            slices: 10,
            view_size: 5,
            cycles,
            phase_ns: None,
        }
    }

    #[test]
    fn counters_record_all_event_kinds() {
        let mut c = EventCounters::default();
        c.record(Event::SwapProposed);
        c.record(Event::SwapApplied);
        c.record(Event::SwapApplied);
        c.record(Event::SwapUseless);
        c.record(Event::UpdateSent);
        c.record(Event::SampleAbsorbed);
        c.record(Event::SwapAbandoned);
        c.record(Event::SampleRejected);
        c.record(Event::SampleRejected);
        assert_eq!(c.swaps_proposed, 1);
        assert_eq!(c.swaps_applied, 2);
        assert_eq!(c.swaps_useless, 1);
        assert_eq!(c.updates_sent, 1);
        assert_eq!(c.samples_absorbed, 1);
        assert_eq!(c.swaps_abandoned, 1);
        assert_eq!(c.samples_rejected, 2);
    }

    #[test]
    fn unsuccessful_pct() {
        let mut c = EventCounters::default();
        assert_eq!(c.unsuccessful_swap_pct(), 0.0, "no swaps yet");
        c.swaps_applied = 3;
        c.swaps_useless = 1;
        assert!((c.unsuccessful_swap_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = EventCounters {
            swaps_proposed: 1,
            swaps_applied: 2,
            swaps_useless: 3,
            updates_sent: 4,
            samples_absorbed: 5,
            swaps_abandoned: 6,
            samples_rejected: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.swaps_proposed, 2);
        assert_eq!(a.samples_absorbed, 10);
        assert_eq!(a.swaps_abandoned, 12);
        assert_eq!(a.samples_rejected, 14);
    }

    #[test]
    fn record_summaries() {
        let rec = record(vec![stats(1, 50.0), stats(2, 10.0), stats(3, 2.0)]);
        assert_eq!(rec.final_sdm(), Some(2.0));
        assert_eq!(rec.final_gdm(), Some(1.0));
        assert_eq!(rec.cycles_to_reach_sdm(10.0), Some(2));
        assert_eq!(rec.cycles_to_reach_sdm(0.5), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rec = record(vec![stats(1, 5.0)]);
        let mut buf = Vec::new();
        rec.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("cycle,n,sdm,gdm"));
        assert!(lines[1].starts_with("1,100,5,2.5"));
    }

    #[test]
    fn phase_timings_total_and_accumulate() {
        let mut acc = PhaseTimings::default();
        let cycle = PhaseTimings {
            churn_ns: 1,
            drain_ns: 2,
            membership_ns: 3,
            refresh_ns: 4,
            active_ns: 5,
            delivery_ns: 6,
            metrics_ns: 7,
        };
        assert_eq!(cycle.total_ns(), 28);
        acc.accumulate(&cycle);
        acc.accumulate(&cycle);
        assert_eq!(acc.total_ns(), 56);
        assert_eq!(acc.membership_ns, 6);
        let rows = cycle.rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[2], ("membership", 3));
        assert_eq!(rows.iter().map(|&(_, ns)| ns).sum::<u64>(), 28);
    }

    #[test]
    fn rows_us_floor_divides_nanoseconds() {
        let t = PhaseTimings {
            churn_ns: 999,
            membership_ns: 2_500,
            ..PhaseTimings::default()
        };
        let us = t.rows_us();
        assert_eq!(us[0], ("churn", 0));
        assert_eq!(us[2], ("membership", 2));
    }

    #[test]
    fn timings_roundtrip_through_json() {
        let mut s = stats(1, 5.0);
        s.timings = Some(PhaseTimings {
            membership_ns: 42,
            ..PhaseTimings::default()
        });
        let mut rec = record(vec![s]);
        rec.phase_ns = Some(PhaseTimings {
            membership_ns: 42,
            ..PhaseTimings::default()
        });
        let parsed: RunRecord = serde_json::from_str(&rec.to_json()).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(parsed.cycles[0].timings.unwrap().membership_ns, 42);
        assert_eq!(parsed.phase_ns.unwrap().membership_ns, 42);
    }

    #[test]
    fn untimed_record_omits_phase_ns_key() {
        let rec = record(vec![stats(1, 5.0)]);
        let json = rec.to_json();
        assert!(!json.contains("phase_ns"));
        let parsed: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn json_roundtrip() {
        let rec = record(vec![stats(1, 5.0)]);
        let parsed: RunRecord = serde_json::from_str(&rec.to_json()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn metrics_registry_unifies_counters_and_phases() {
        let mut s = stats(1, 5.0);
        s.events.swaps_applied = 4;
        s.events.updates_sent = 9;
        let mut rec = record(vec![s]);
        rec.phase_ns = Some(PhaseTimings {
            membership_ns: 1_000,
            ..PhaseTimings::default()
        });
        let reg = rec.metrics_registry();
        assert_eq!(reg.counter("dslice_sim_swaps_applied_total"), Some(4));
        assert_eq!(reg.gauge("dslice_sim_sdm"), Some(5.0));
        assert_eq!(
            reg.counter("dslice_sim_phase_ns_total{phase=\"membership\"}"),
            Some(1_000)
        );
        let text = reg.to_prometheus();
        assert!(dslice_obs::validate_prometheus(&text).unwrap() > 10);
    }
}
