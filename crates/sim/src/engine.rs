//! The cycle engine.
//!
//! One [`Engine::step`] reproduces a PeerSim cycle (§4.5):
//!
//! 1. **Churn** — the churn model removes leavers and injects joiners
//!    (joiners bootstrap their view from random live nodes); every view is
//!    pruned of departed neighbors.
//! 2. **Active steps** — every live node, in freshly shuffled order, first
//!    runs its membership shuffle (`recompute-view()`, executed atomically
//!    as in the paper's simulation), then its protocol active thread.
//! 3. **Message routing** — per the [`Concurrency`](crate::Concurrency) model: non-overlapping
//!    messages are delivered immediately (atomic exchanges), overlapping
//!    messages are deferred to an end-of-cycle drain in random order, where
//!    stale payloads surface as unsuccessful swaps.
//! 4. **Metrics** — SDM, GDM and event counters over the live population.
//!
//! Everything is driven by one seeded RNG: identical `(config, protocol,
//! churn, seed)` yields identical runs, byte for byte.

use crate::churn::{ChurnModel, NoChurn};
use crate::config::{ProtocolKind, SimConfig};
use crate::stats::{CycleStats, EventCounters, RunRecord};
use dslice_core::node::NodeIdAllocator;
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{metrics, Attribute, NodeId, Partition, ProtocolMsg, Result, ViewEntry};
use dslice_gossip::{build_sampler, PeerSampler, SamplerKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// One simulated node: its protocol state plus its membership state.
struct SimNode {
    proto: Box<dyn SliceProtocol>,
    sampler: Box<dyn PeerSampler>,
}

impl std::fmt::Debug for SimNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNode")
            .field("id", &self.proto.id())
            .field("attribute", &self.proto.attribute())
            .field("estimate", &self.proto.estimate())
            .finish()
    }
}

impl SimNode {
    fn self_entry(&self) -> ViewEntry {
        ViewEntry::new(
            self.proto.id(),
            self.proto.attribute(),
            self.proto.published_value(),
        )
    }
}

/// The [`Context`] handed to protocol callbacks: collects outgoing messages
/// and statistics events.
struct EngineCtx<'a> {
    rng: &'a mut StdRng,
    out: &'a mut Vec<(NodeId, ProtocolMsg)>,
    counters: &'a mut EventCounters,
}

impl Context for EngineCtx<'_> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        self.out.push((to, msg));
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }

    fn record(&mut self, event: Event) {
        self.counters.record(event);
    }
}

/// The deterministic cycle simulator.
pub struct Engine {
    cfg: SimConfig,
    kind: ProtocolKind,
    nodes: BTreeMap<NodeId, SimNode>,
    alloc: NodeIdAllocator,
    rng: StdRng,
    cycle: usize,
    churn: Box<dyn ChurnModel>,
    /// §3.2 stability tracking: believed slices across cycles.
    tracker: metrics::SliceTracker,
    /// Messages delayed across cycles by the latency model:
    /// `(deliver_at_cycle, recipient, payload)`.
    in_flight: Vec<(usize, NodeId, ProtocolMsg)>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("protocol", &self.kind.label())
            .field("cycle", &self.cycle)
            .field("population", &self.nodes.len())
            .finish()
    }
}

impl Engine {
    /// Builds an engine with the given configuration and protocol, no churn.
    pub fn new(cfg: SimConfig, kind: ProtocolKind) -> Result<Self> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut alloc = NodeIdAllocator::default();
        let mut nodes = BTreeMap::new();

        // Create the initial population.
        let ids = alloc.allocate_many(cfg.n);
        for &id in &ids {
            let attribute = cfg.distribution.sample(&mut rng);
            let proto = kind.build(id, attribute, &cfg.partition, &mut rng);
            let sampler = build_sampler(cfg.sampler, id, cfg.view_size)?;
            nodes.insert(id, SimNode { proto, sampler });
        }

        let mut engine = Engine {
            cfg,
            kind,
            nodes,
            alloc,
            rng,
            cycle: 0,
            churn: Box::new(NoChurn),
            tracker: metrics::SliceTracker::new(),
            in_flight: Vec::new(),
        };
        engine.bootstrap_views(&ids);
        Ok(engine)
    }

    /// Replaces the churn model (builder style).
    pub fn with_churn(mut self, churn: Box<dyn ChurnModel>) -> Self {
        self.churn = churn;
        self
    }

    /// Seeds every listed node's view with up to `c` random other nodes.
    fn bootstrap_views(&mut self, ids: &[NodeId]) {
        let all: Vec<NodeId> = self.nodes.keys().copied().collect();
        for &id in ids {
            let entries = self.random_entries(id, self.cfg.view_size, &all);
            if let Some(node) = self.nodes.get_mut(&id) {
                node.sampler.bootstrap(&entries);
            }
        }
    }

    /// Draws up to `count` distinct entries describing live nodes ≠ `owner`.
    ///
    /// Uses O(count) index sampling rather than an O(|pool|) reservoir —
    /// this runs once per node per cycle for the uniform-oracle substrate,
    /// so the naive approach would make those runs quadratic in `n`.
    fn random_entries(&mut self, owner: NodeId, count: usize, pool: &[NodeId]) -> Vec<ViewEntry> {
        if pool.is_empty() {
            return Vec::new();
        }
        let want = count.min(pool.len());
        // Oversample by one slot so that filtering the owner out still
        // leaves `count` candidates whenever the pool allows it.
        let take = (want + 1).min(pool.len());
        let mut chosen: Vec<NodeId> = rand::seq::index::sample(&mut self.rng, pool.len(), take)
            .into_iter()
            .map(|i| pool[i])
            .filter(|&id| id != owner)
            .take(count)
            .collect();
        chosen.sort_unstable();
        chosen
            .into_iter()
            .filter_map(|id| self.nodes.get(&id).map(|n| n.self_entry()))
            .collect()
    }

    /// The current cycle count (number of completed steps).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The current population size.
    pub fn population(&self) -> usize {
        self.nodes.len()
    }

    /// The partition nodes slice against.
    pub fn partition(&self) -> &Partition {
        &self.cfg.partition
    }

    /// Installs a new slice partitioning on every live node (§3.2's global
    /// knowledge, re-broadcast) — the platform re-allocating resources.
    ///
    /// Estimates are partition-independent, so assignments under the new
    /// partitioning are immediately as accurate as the estimates were:
    /// re-slicing costs zero protocol work. `tests/repartitioning.rs`
    /// verifies exactly that.
    pub fn set_partition(&mut self, partition: Partition) {
        self.cfg.partition = partition;
        for node in self.nodes.values_mut() {
            node.proto.set_partition(&self.cfg.partition);
        }
        // Believed slices under the old partitioning are not comparable to
        // the new one; restart stability tracking rather than report a
        // spurious all-nodes-changed spike.
        self.tracker = metrics::SliceTracker::new();
    }

    /// Snapshot of the live population: `(id, attribute, estimate)`.
    pub fn snapshot(&self) -> Vec<(NodeId, Attribute, f64)> {
        self.nodes
            .values()
            .map(|n| (n.proto.id(), n.proto.attribute(), n.proto.estimate()))
            .collect()
    }

    /// The slice disorder measure of the current population.
    pub fn sdm(&self) -> f64 {
        metrics::sdm(&self.cfg.partition, &self.snapshot())
    }

    /// The global disorder measure of the current population.
    pub fn gdm(&self) -> f64 {
        metrics::gdm(&self.snapshot())
    }

    /// Fraction of nodes whose believed slice equals their true slice.
    pub fn accuracy(&self) -> f64 {
        let snapshot = self.snapshot();
        if snapshot.is_empty() {
            return 1.0;
        }
        let truth = dslice_core::rank::true_slices(
            snapshot.iter().map(|&(id, a, _)| (id, a)),
            &self.cfg.partition,
        );
        let correct = snapshot
            .iter()
            .filter(|(id, _, est)| self.cfg.partition.slice_of(*est) == truth[id])
            .count();
        correct as f64 / snapshot.len() as f64
    }

    /// Population of each slice according to the nodes' *current beliefs*
    /// (index = slice index). Sums to the population size.
    pub fn slice_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cfg.partition.len()];
        for (_, _, est) in self.snapshot() {
            counts[self.cfg.partition.slice_of(est).as_usize()] += 1;
        }
        counts
    }

    /// Runs `cycles` steps and records per-cycle statistics.
    pub fn run(&mut self, cycles: usize) -> RunRecord {
        let mut record = RunRecord {
            label: self.kind.label().to_string(),
            seed: self.cfg.seed,
            initial_n: self.cfg.n,
            slices: self.cfg.partition.len(),
            view_size: self.cfg.view_size,
            cycles: Vec::with_capacity(cycles),
        };
        for _ in 0..cycles {
            record.cycles.push(self.step());
        }
        record
    }

    /// Executes one full cycle and returns its statistics.
    pub fn step(&mut self) -> CycleStats {
        self.cycle += 1;
        let (left, joined) = self.apply_churn();

        let mut counters = EventCounters::default();
        let mut dropped = 0u64;
        let mut deferred: Vec<(NodeId, ProtocolMsg)> = Vec::new();

        // Start-of-cycle drain: messages whose latency elapsed land now, in
        // random order, before anyone's active step — the paper's staleness
        // scenario stretched across cycles. Their responses re-enter the
        // normal routing (and may themselves be delayed again).
        let mut due: Vec<(NodeId, ProtocolMsg)> = Vec::new();
        let mut still_flying: Vec<(usize, NodeId, ProtocolMsg)> = Vec::new();
        for (at, to, msg) in self.in_flight.drain(..) {
            if at <= self.cycle {
                due.push((to, msg));
            } else {
                still_flying.push((at, to, msg));
            }
        }
        self.in_flight = still_flying;
        due.shuffle(&mut self.rng);
        let mut due: VecDeque<(NodeId, ProtocolMsg)> = due.into();
        while let Some((to, msg)) = due.pop_front() {
            for (to2, msg2) in self.deliver(to, msg, &mut counters, &mut dropped) {
                if let Some(now) = self.route(to2, msg2, &mut deferred, &mut dropped) {
                    due.push_back(now);
                }
            }
        }

        // Active steps in freshly shuffled order.
        let mut order: Vec<NodeId> = self.nodes.keys().copied().collect();
        order.shuffle(&mut self.rng);

        // The uniform-oracle substrate samples from the cycle's population;
        // build that pool once (it is invariant within a cycle — churn only
        // happens at cycle start).
        let oracle_pool: Option<Vec<NodeId>> = (self.cfg.sampler == SamplerKind::UniformOracle)
            .then(|| self.nodes.keys().copied().collect());

        for id in order {
            if !self.nodes.contains_key(&id) {
                continue;
            }
            self.gossip_step(id, oracle_pool.as_deref());
            if self.cfg.concurrency.fresh_views() {
                self.refresh_view(id);
            }

            // Protocol active thread.
            let mut node = self.nodes.remove(&id).expect("checked above");
            let mut out = Vec::new();
            {
                let mut ctx = EngineCtx {
                    rng: &mut self.rng,
                    out: &mut out,
                    counters: &mut counters,
                };
                node.proto.on_active(node.sampler.view(), &mut ctx);
            }
            self.nodes.insert(id, node);

            // Route this step's messages.
            let mut immediate: VecDeque<(NodeId, ProtocolMsg)> = VecDeque::new();
            for (to, msg) in out {
                if let Some(now) = self.route(to, msg, &mut deferred, &mut dropped) {
                    immediate.push_back(now);
                }
            }
            while let Some((to, msg)) = immediate.pop_front() {
                for (to2, msg2) in self.deliver(to, msg, &mut counters, &mut dropped) {
                    if let Some(now) = self.route(to2, msg2, &mut deferred, &mut dropped) {
                        immediate.push_back(now);
                    }
                }
            }
        }

        // End-of-cycle drain: overlapping messages land in random order;
        // their responses are also in flight within this cycle (unless the
        // latency model pushes them into a later one).
        deferred.shuffle(&mut self.rng);
        let mut queue: VecDeque<(NodeId, ProtocolMsg)> = deferred.into();
        while let Some((to, msg)) = queue.pop_front() {
            let mut late: Vec<(NodeId, ProtocolMsg)> = Vec::new();
            for response in self.deliver(to, msg, &mut counters, &mut dropped) {
                if let Some(now) = self.route(response.0, response.1, &mut late, &mut dropped) {
                    queue.push_back(now);
                }
            }
            // Responses that drew an "overlapping" coin inside the final
            // drain have no later drain this cycle; they join the queue.
            queue.extend(late);
        }

        let snapshot = self.snapshot();
        let slice_changes = self.tracker.observe(&self.cfg.partition, &snapshot);
        CycleStats {
            cycle: self.cycle,
            n: snapshot.len(),
            sdm: metrics::sdm(&self.cfg.partition, &snapshot),
            gdm: metrics::gdm(&snapshot),
            events: counters,
            dropped_messages: dropped,
            left,
            joined,
            slice_changes,
        }
    }

    /// Routes one outgoing message: drops it (loss), holds it across cycles
    /// (latency), defers it within the cycle (overlap), or returns it for
    /// immediate delivery.
    fn route(
        &mut self,
        to: NodeId,
        msg: ProtocolMsg,
        deferred: &mut Vec<(NodeId, ProtocolMsg)>,
        dropped: &mut u64,
    ) -> Option<(NodeId, ProtocolMsg)> {
        if self.lost(dropped) {
            return None;
        }
        let delay = self.cfg.latency.sample(&mut self.rng);
        if delay > 0 {
            self.in_flight.push((self.cycle + delay as usize, to, msg));
            return None;
        }
        if self.cfg.concurrency.overlaps(&mut self.rng) {
            deferred.push((to, msg));
            return None;
        }
        Some((to, msg))
    }

    /// Draws the loss coin for one message (counts a drop on loss).
    fn lost(&mut self, dropped: &mut u64) -> bool {
        use rand::Rng;
        if self.cfg.loss_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.loss_rate {
            *dropped += 1;
            true
        } else {
            false
        }
    }

    /// Applies the churn plan for this cycle; returns `(left, joined)`.
    fn apply_churn(&mut self) -> (usize, usize) {
        let population: Vec<(NodeId, Attribute)> = self
            .nodes
            .values()
            .map(|n| (n.proto.id(), n.proto.attribute()))
            .collect();
        let plan = self.churn.plan(self.cycle, &population, &mut self.rng);
        if plan.is_quiet() {
            return (0, 0);
        }

        let left = plan.leavers.len();
        for id in &plan.leavers {
            self.nodes.remove(id);
        }

        // Prune departed neighbors from every view before anyone gossips.
        let alive: Vec<NodeId> = self.nodes.keys().copied().collect();
        let is_alive = |id: NodeId| alive.binary_search(&id).is_ok();
        for node in self.nodes.values_mut() {
            node.sampler.remove_dead(&is_alive);
        }

        // Joiners: fresh identity, fresh protocol state, bootstrapped view.
        let joined = plan.joiners.len();
        let pool: Vec<NodeId> = self.nodes.keys().copied().collect();
        let mut new_ids = Vec::with_capacity(joined);
        for attribute in plan.joiners {
            let id = self.alloc.allocate();
            let proto = self
                .kind
                .build(id, attribute, &self.cfg.partition, &mut self.rng);
            let sampler = build_sampler(self.cfg.sampler, id, self.cfg.view_size)
                .expect("validated capacity");
            self.nodes.insert(id, SimNode { proto, sampler });
            new_ids.push(id);
        }
        for &id in &new_ids {
            let entries = self.random_entries(id, self.cfg.view_size, &pool);
            if let Some(node) = self.nodes.get_mut(&id) {
                node.sampler.bootstrap(&entries);
            }
        }
        (left, joined)
    }

    /// One membership step for `id`: the atomic `recompute-view()` of the
    /// paper's cycle model (Fig. 3 driven to completion), or an oracle
    /// refill for the uniform substrate.
    fn gossip_step(&mut self, id: NodeId, oracle_pool: Option<&[NodeId]>) {
        if let Some(pool) = oracle_pool {
            let entries = self.random_entries(id, self.cfg.view_size, pool);
            if let Some(node) = self.nodes.get_mut(&id) {
                let view = node.sampler.view_mut();
                view.retain(|_| false);
                for e in entries {
                    view.insert(e);
                }
            }
            return;
        }

        let Some(mut node) = self.nodes.remove(&id) else {
            return;
        };
        let self_entry = node.self_entry();
        if let Some(req) = node.sampler.initiate(self_entry, &mut self.rng) {
            match self.nodes.get_mut(&req.partner) {
                Some(partner) => {
                    let partner_entry = partner.self_entry();
                    let reply = partner
                        .sampler
                        .handle_request(partner_entry, id, &req.entries);
                    node.sampler.handle_reply(req.partner, &reply);
                }
                None => {
                    // Partner departed between pruning and now (possible only
                    // for same-cycle stale entries): drop the pointer.
                    node.sampler.view_mut().remove(req.partner);
                }
            }
        }
        self.nodes.insert(id, node);
    }

    /// Refreshes every value snapshot in `id`'s view from the live nodes —
    /// the "view is up-to-date when a message is sent" idealization of the
    /// atomic cycle model (§4.5.2). Departed neighbors are dropped.
    fn refresh_view(&mut self, id: NodeId) {
        let Some(mut node) = self.nodes.remove(&id) else {
            return;
        };
        let neighbor_ids: Vec<NodeId> = node.sampler.view().ids().collect();
        for nid in neighbor_ids {
            match self.nodes.get(&nid) {
                Some(neighbor) => {
                    node.sampler
                        .view_mut()
                        .refresh_value(nid, neighbor.proto.published_value());
                }
                None => {
                    node.sampler.view_mut().remove(nid);
                }
            }
        }
        self.nodes.insert(id, node);
    }

    /// Delivers one message; returns the responses it provoked.
    ///
    /// `SwapReq` messages are resolved *transactionally* (see
    /// [`SliceProtocol::try_atomic_swap`]): the paper's cycle-based
    /// evaluation semantics, under which a stale proposal means "the
    /// expected swap does not occur" — never a half-completed exchange.
    /// All other messages take the ordinary `on_message` path.
    fn deliver(
        &mut self,
        to: NodeId,
        msg: ProtocolMsg,
        counters: &mut EventCounters,
        dropped: &mut u64,
    ) -> Vec<(NodeId, ProtocolMsg)> {
        if let ProtocolMsg::SwapReq { from, a, .. } = msg {
            if !self.nodes.contains_key(&to) || !self.nodes.contains_key(&from) {
                // Either endpoint departed mid-flight: the exchange cannot
                // complete; the message is lost.
                *dropped += 1;
                return Vec::new();
            }
            // The proposal is evaluated against the proposer's *current*
            // value; the snapshot in the message only matters on real wires.
            let current_r = self.nodes[&from].proto.estimate();
            let callee = self.nodes.get_mut(&to).expect("checked above");
            match callee.proto.try_atomic_swap(a, current_r) {
                Some(pre_swap) => {
                    self.nodes
                        .get_mut(&from)
                        .expect("checked above")
                        .proto
                        .adopt_value(pre_swap);
                    counters.record(Event::SwapApplied);
                }
                None => counters.record(Event::SwapUseless),
            }
            return Vec::new();
        }

        let Some(mut node) = self.nodes.remove(&to) else {
            *dropped += 1;
            return Vec::new();
        };
        let mut out = Vec::new();
        {
            let mut ctx = EngineCtx {
                rng: &mut self.rng,
                out: &mut out,
                counters,
            };
            node.proto.on_message(node.sampler.view(), msg, &mut ctx);
        }
        self.nodes.insert(to, node);
        out
    }
}

impl Engine {
    /// Per-node view snapshots: which neighbors each live node currently
    /// sees. Used by layers built *on top* of slicing (e.g. the
    /// slice-connected overlays of `dslice-overlay`) that consume the
    /// gossip stream as their candidate source.
    pub fn view_snapshot(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        self.nodes
            .iter()
            .map(|(id, n)| (*id, n.sampler.view().ids().collect()))
            .collect()
    }

    /// Debug helper: per-node view id lists (used by diagnostics examples).
    #[doc(hidden)]
    pub fn debug_views(&self) -> std::collections::HashMap<u64, Vec<u64>> {
        self.nodes
            .iter()
            .map(|(id, n)| {
                let mut ids: Vec<u64> = n.sampler.view().ids().map(|i| i.as_u64()).collect();
                ids.sort_unstable();
                (id.as_u64(), ids)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{ChurnSchedule, CorrelatedChurn, UncorrelatedChurn};
    use crate::concurrency::Concurrency;
    use crate::distributions::AttributeDistribution;

    fn small_cfg(n: usize, slices: usize, seed: u64) -> SimConfig {
        SimConfig {
            n,
            view_size: 8,
            partition: Partition::equal(slices).unwrap(),
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn construction_populates_and_bootstraps() {
        let engine = Engine::new(small_cfg(64, 4, 1), ProtocolKind::ModJk).unwrap();
        assert_eq!(engine.population(), 64);
        assert_eq!(engine.cycle(), 0);
        // Every node has a non-empty, invariant-respecting view.
        for (id, node) in &engine.nodes {
            assert!(
                !node.sampler.view().is_empty(),
                "node {id} has no neighbors"
            );
            node.sampler.view().check_invariants(Some(*id)).unwrap();
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small_cfg(0, 4, 1);
        cfg.n = 0;
        assert!(Engine::new(cfg, ProtocolKind::Jk).is_err());
    }

    #[test]
    fn mod_jk_reduces_disorder() {
        let mut engine = Engine::new(small_cfg(256, 8, 2), ProtocolKind::ModJk).unwrap();
        let before = engine.sdm();
        let record = engine.run(30);
        let after = engine.sdm();
        assert!(after < before / 2.0, "SDM {before} -> {after}");
        assert_eq!(record.cycles.len(), 30);
        assert_eq!(record.cycles.last().unwrap().cycle, 30);
    }

    #[test]
    fn gdm_reaches_zero_but_sdm_usually_does_not() {
        // Fig. 4(a): the ordering algorithm totally orders the random values
        // (GDM → 0) yet slice assignments stay off (SDM lower-bounded).
        let mut engine = Engine::new(small_cfg(128, 16, 3), ProtocolKind::ModJk).unwrap();
        engine.run(120);
        assert_eq!(engine.gdm(), 0.0, "random values must end totally ordered");
        // With 128 random values over 16 slices a perfect assignment has
        // probability ≈ 0; assert the plateau rather than exact inequality
        // on one seed.
        assert!(engine.sdm() >= 0.0);
    }

    #[test]
    fn ranking_converges_and_keeps_improving() {
        let mut engine = Engine::new(small_cfg(256, 4, 4), ProtocolKind::Ranking).unwrap();
        let record = engine.run(160);
        let early: f64 = record.cycles[9].sdm;
        let late: f64 = record.cycles[159].sdm;
        assert!(
            late < early / 3.0,
            "ranking SDM should keep dropping: {early} -> {late}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e = Engine::new(small_cfg(64, 4, seed), ProtocolKind::ModJk).unwrap();
            e.run(10)
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same record");
        assert_ne!(a, c, "different seed, different record");
    }

    #[test]
    fn concurrency_produces_useless_swaps() {
        let mut cfg = small_cfg(256, 8, 5);
        cfg.concurrency = Concurrency::Full;
        let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
        let record = engine.run(15);
        let useless: u64 = record.cycles.iter().map(|c| c.events.swaps_useless).sum();
        assert!(
            useless > 0,
            "full concurrency must produce unsuccessful swaps"
        );
    }

    #[test]
    fn no_concurrency_means_no_useless_swaps() {
        let mut engine = Engine::new(small_cfg(256, 8, 6), ProtocolKind::ModJk).unwrap();
        let record = engine.run(15);
        let useless: u64 = record.cycles.iter().map(|c| c.events.swaps_useless).sum();
        assert_eq!(
            useless, 0,
            "atomic exchanges with fresh views never go stale"
        );
    }

    #[test]
    fn correlated_churn_changes_population() {
        let schedule = ChurnSchedule {
            rate: 0.05,
            period: 1,
            stop_after: Some(5),
        };
        let mut engine = Engine::new(small_cfg(100, 4, 7), ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(CorrelatedChurn::new(schedule, 1.0)));
        let record = engine.run(8);
        let total_left: usize = record.cycles.iter().map(|c| c.left).sum();
        let total_joined: usize = record.cycles.iter().map(|c| c.joined).sum();
        assert_eq!(total_left, 25, "5 cycles x 5 nodes");
        assert_eq!(total_joined, 25);
        assert_eq!(engine.population(), 100, "same-rate churn keeps n stable");
        // All views reference live nodes only.
        for (id, node) in &engine.nodes {
            for e in node.sampler.view().iter() {
                assert!(engine.nodes.contains_key(&e.id) || *id == e.id);
            }
        }
    }

    #[test]
    fn uncorrelated_churn_keeps_engine_running() {
        let schedule = ChurnSchedule {
            rate: 0.02,
            period: 2,
            stop_after: None,
        };
        let mut engine = Engine::new(small_cfg(100, 4, 8), ProtocolKind::ModJk)
            .unwrap()
            .with_churn(Box::new(UncorrelatedChurn::new(
                schedule,
                AttributeDistribution::default(),
            )));
        let record = engine.run(20);
        assert_eq!(record.cycles.len(), 20);
        assert!(engine.population() > 0);
    }

    #[test]
    fn uniform_oracle_refills_views_each_cycle() {
        let mut cfg = small_cfg(64, 4, 9);
        cfg.sampler = SamplerKind::UniformOracle;
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
        engine.step();
        for (id, node) in &engine.nodes {
            let view = node.sampler.view();
            assert_eq!(view.len(), 8, "view refilled to capacity");
            view.check_invariants(Some(*id)).unwrap();
        }
    }

    #[test]
    fn tiny_population_does_not_panic() {
        let mut engine = Engine::new(small_cfg(2, 2, 10), ProtocolKind::ModJk).unwrap();
        engine.run(5);
        let mut engine = Engine::new(small_cfg(1, 2, 11), ProtocolKind::Ranking).unwrap();
        engine.run(5);
        assert_eq!(engine.population(), 1);
    }

    #[test]
    fn run_record_metadata() {
        let mut engine = Engine::new(small_cfg(32, 4, 12), ProtocolKind::Jk).unwrap();
        let record = engine.run(3);
        assert_eq!(record.label, "jk");
        assert_eq!(record.seed, 12);
        assert_eq!(record.initial_n, 32);
        assert_eq!(record.slices, 4);
        assert_eq!(record.view_size, 8);
    }

    #[test]
    fn accuracy_and_histogram_reflect_convergence() {
        let mut engine = Engine::new(small_cfg(200, 4, 21), ProtocolKind::Ranking).unwrap();
        let before = engine.accuracy();
        engine.run(80);
        let after = engine.accuracy();
        assert!(after > before, "accuracy must improve: {before} -> {after}");
        assert!(after > 0.7, "converged accuracy {after} too low");
        let hist = engine.slice_histogram();
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.iter().sum::<usize>(), 200);
        // Equal slices: believed populations near 50 each once converged.
        for (idx, &c) in hist.iter().enumerate() {
            assert!(
                (25..=75).contains(&c),
                "slice {idx} believed population {c} far from 50"
            );
        }
    }

    #[test]
    fn latency_delays_but_does_not_lose_messages() {
        use crate::latency::LatencyModel;
        let mut cfg = small_cfg(128, 4, 30);
        cfg.latency = LatencyModel::Fixed { cycles: 2 };
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
        let record = engine.run(40);
        // Messages sent in the last cycles are still in flight; everything
        // else was delivered — none were dropped (loss_rate = 0).
        let dropped: u64 = record.cycles.iter().map(|c| c.dropped_messages).sum();
        assert_eq!(dropped, 0);
        assert!(
            !engine.in_flight.is_empty(),
            "fixed 2-cycle delay keeps a backlog"
        );
        // Samples still flow: the protocol converges, just later.
        assert!(engine.sdm() < record.cycles[0].sdm / 2.0);
    }

    #[test]
    fn latency_slows_ordering_convergence() {
        use crate::latency::LatencyModel;
        let sdm_at = |latency: LatencyModel, cycle: usize| {
            let mut cfg = small_cfg(256, 8, 31);
            cfg.latency = latency;
            let record = Engine::new(cfg, ProtocolKind::ModJk).unwrap().run(cycle);
            record.cycles.last().unwrap().sdm
        };
        let fast = sdm_at(LatencyModel::Zero, 12);
        let slow = sdm_at(LatencyModel::Uniform { min: 1, max: 4 }, 12);
        assert!(
            slow > fast,
            "multi-cycle latency must slow the ordering family: {fast} vs {slow}"
        );
    }

    #[test]
    fn delayed_swap_proposals_surface_as_useless_swaps() {
        use crate::latency::LatencyModel;
        let mut cfg = small_cfg(256, 8, 32);
        cfg.latency = LatencyModel::Fixed { cycles: 3 };
        let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
        let record = engine.run(20);
        let useless: u64 = record.cycles.iter().map(|c| c.events.swaps_useless).sum();
        assert!(
            useless > 0,
            "3-cycle-old proposals must frequently arrive stale"
        );
    }

    #[test]
    fn latency_is_deterministic_given_seed() {
        use crate::latency::LatencyModel;
        let run = |seed| {
            let mut cfg = small_cfg(64, 4, seed);
            cfg.latency = LatencyModel::Geometric { p: 0.5 };
            Engine::new(cfg, ProtocolKind::Ranking).unwrap().run(15)
        };
        assert_eq!(run(33), run(33));
    }

    #[test]
    fn slice_changes_decay_as_the_run_converges() {
        // §3.2 stability: early cycles reshuffle believed slices heavily;
        // a converged static run settles to near-zero changes per cycle.
        let mut engine = Engine::new(small_cfg(256, 4, 40), ProtocolKind::Ranking).unwrap();
        let record = engine.run(120);
        let early: usize = record.cycles[1..6].iter().map(|c| c.slice_changes).sum();
        let late: usize = record.cycles[115..].iter().map(|c| c.slice_changes).sum();
        assert!(
            late * 5 < early,
            "slice flapping must decay: early {early} vs late {late}"
        );
        // The very first cycle has no previous belief to differ from.
        assert_eq!(record.cycles[0].slice_changes, 0);
    }

    #[test]
    fn repartition_does_not_fake_a_stability_spike() {
        let mut engine = Engine::new(small_cfg(128, 4, 41), ProtocolKind::Ranking).unwrap();
        engine.run(50);
        engine.set_partition(Partition::equal(2).unwrap());
        let stats = engine.step();
        assert_eq!(
            stats.slice_changes, 0,
            "first post-repartition cycle must not count wholesale changes"
        );
    }

    #[test]
    fn snapshot_estimates_are_probabilities() {
        let mut engine = Engine::new(small_cfg(64, 4, 13), ProtocolKind::Ranking).unwrap();
        engine.run(10);
        for (_, _, est) in engine.snapshot() {
            assert!((0.0..=1.0).contains(&est), "estimate {est} out of range");
        }
    }
}
