//! The cycle engine, architected for 10⁵-node populations.
//!
//! ## Cycle structure
//!
//! One [`Engine::step`] reproduces a PeerSim cycle (§4.5) as a sequence of
//! explicit phases:
//!
//! 1. **Churn** — the churn model removes leavers and injects joiners
//!    (joiners bootstrap their view from random live nodes); every view is
//!    pruned of departed neighbors; the incremental rank cache folds the
//!    batch in (no global re-sort).
//! 2. **Latency drain** — messages whose cross-cycle latency elapsed land
//!    now, in random order, before anyone's active step.
//! 3. **Membership phase** — every live node runs its membership shuffle
//!    (`recompute-view()`, executed atomically as in the paper's
//!    simulation), as **schedule → batch → execute**:
//!    * *schedule*: every node's exchange partner is drawn up front from
//!      the node's own counter-based stream (keyed by
//!      `(seed, node id, cycle)`, like the active phase) against its
//!      start-of-phase view;
//!    * *batch*: the resulting `(initiator, partner)` pairs are greedily
//!      partitioned, in slot order, into **conflict-free batches** in which
//!      no node appears twice (first-fit on per-slot occupancy bitmasks);
//!    * *execute*: batches run in order; within a batch the pairs touch
//!      disjoint node sets and each pair draws only from the initiator's
//!      carried stream, so the batch is fanned out across
//!      [`SimConfig::shards`](crate::SimConfig::shards) scoped worker
//!      threads. **Any shard count produces a byte-identical run.**
//!
//!    The uniform-oracle substrate takes the same shape: the population is
//!    snapshotted once per cycle and every view refilled from it in sharded
//!    chunks, each node sampling from its own stream.
//! 4. **Refresh phase** — every view's value snapshots are refreshed from
//!    the live population ("each node updates its view before sending its
//!    random value", §4.5.2). Published values are protocol state the
//!    refresh never touches, so the engine snapshots them per slot once and
//!    refreshes all views in sharded chunks against the immutable snapshot
//!    — again byte-identical at any shard count.
//! 5. **Active phase** — every live node runs its protocol active thread
//!    against its own (refreshed) view, drawing randomness from its **own
//!    counter-based stream** keyed by `(seed, node id, cycle)` (see
//!    [`crate::stream`]). The step is node-local — it reads nothing but the
//!    node's own state — so the engine partitions the slot array across
//!    `cfg.shards` scoped worker threads; outgoing messages land in
//!    per-slot buffers merged in slot order. **Any shard count produces a
//!    byte-identical run**: per-node streams make the draws independent of
//!    scheduling, and the merge order is fixed.
//! 6. **Delivery phase** — the merged buffers are routed in slot order per
//!    the [`Concurrency`](crate::Concurrency) model: non-overlapping
//!    messages are delivered immediately as *atomic exchanges*, overlapping
//!    messages are deferred to an end-of-cycle drain in random order, where
//!    stale payloads surface as unsuccessful swaps.
//! 7. **Metrics** — SDM, GDM and event counters over the live population,
//!    every [`metrics_every`](crate::SimConfig::metrics_every)-th cycle
//!    (skipped cycles repeat the last computed disorder values); SDM and
//!    slice accuracy come from the churn-maintained
//!    [`RankCache`](metrics::RankCache) in O(n).
//!
//! ## Atomic exchanges under phased execution
//!
//! The paper's baseline model executes each swap exchange atomically. In a
//! phased cycle, a proposal is *computed* in the active phase but
//! *resolved* in the delivery phase, so two same-cycle proposals can race
//! for one partner. For non-overlapping messages the engine restores
//! atomicity by **replaying** the loser: if a swap proposal no longer
//! satisfies the misplacement predicate when it is delivered (because an
//! earlier same-cycle exchange moved a value), the proposer's view is
//! refreshed and its active step re-runs against current state (on its
//! replay stream), exactly as if its atomic turn came after the conflicting
//! exchange — so `Concurrency::None` produces zero unsuccessful swaps, as
//! in the paper. Overlapping and latency-delayed proposals are *not*
//! replayed; their staleness is the measurement of §4.5.2 / Fig. 4(c).
//!
//! ## Storage
//!
//! Node state lives in a dense [`NodeSlab`]: contiguous slots walked in
//! slot order each phase, an id → slot map for O(1) delivery, and a free
//! list so churn reuses slots (memory is bounded by the peak population).
//!
//! Everything is driven by the run seed: identical `(config, protocol,
//! churn, seed)` yields identical runs, byte for byte — at any shard count.

use crate::churn::{ChurnModel, NoChurn};
use crate::config::{ProtocolKind, SimConfig};
use crate::fault::{BandPartition, NetworkFault};
use crate::latency::LatencyModel;
use crate::stats::{CycleStats, EventCounters, PhaseTimings, RunRecord};
use crate::stream::NodeRng;
use dslice_algorithms::{Adaptive, AttackerSpec, Liar};
use dslice_core::node::NodeIdAllocator;
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::slab::SlabChunk;
use dslice_core::{
    metrics, Attribute, NodeId, NodeSlab, Partition, ProtocolMsg, Result, SlotLookup, TakenPair,
    ViewEntry,
};
use dslice_gossip::{build_sampler, PeerSampler, SamplerKind};
use dslice_obs::{FlightRecorder, TraceConfig, TraceKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use std::collections::{HashSet, VecDeque};
use std::mem;

/// Stream domain of the regular active step (see [`NodeRng::for_node`]).
const ACTIVE_SALT: u64 = 0;
/// Stream domain of the atomic-exchange replay.
const REPLAY_SALT: u64 = 1;
/// Stream domain of the membership phase: partner scheduling plus the
/// exchange payload draws (the same stream is carried from schedule to
/// execute), or the oracle's per-node refill sample.
const MEMBERSHIP_SALT: u64 = 2;

/// One simulated node: its protocol state plus its membership state.
struct SimNode {
    proto: Box<dyn SliceProtocol>,
    sampler: Box<dyn PeerSampler>,
}

impl std::fmt::Debug for SimNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNode")
            .field("id", &self.proto.id())
            .field("attribute", &self.proto.attribute())
            .field("estimate", &self.proto.estimate())
            .finish()
    }
}

impl SimNode {
    fn self_entry(&self) -> ViewEntry {
        ViewEntry::new(
            self.proto.id(),
            self.proto.attribute(),
            self.proto.published_value(),
        )
    }
}

/// The [`Context`] handed to protocol callbacks: collects outgoing messages
/// and statistics events. Generic over the RNG so the same context type
/// serves the engine's shared stream (delivery paths) and the per-node
/// streams (active phase).
struct EngineCtx<'a, R: RngCore> {
    rng: &'a mut R,
    out: &'a mut Vec<(NodeId, ProtocolMsg)>,
    counters: &'a mut EventCounters,
}

impl<R: RngCore> Context for EngineCtx<'_, R> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        self.out.push((to, msg));
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }

    fn record(&mut self, event: Event) {
        self.counters.record(event);
    }
}

/// Messages produced by one slot's active step, tagged with the slot.
type SlotBuffer = (usize, Vec<(NodeId, ProtocolMsg)>);

/// Runs the active phase over one contiguous chunk of the slot array.
///
/// Pure per-node work: each node draws from its own `(seed, id, cycle)`
/// stream and writes only to its own state and the chunk-local buffers, so
/// chunks can execute on any thread in any order with identical results.
fn active_chunk(
    mut chunk: SlabChunk<'_, SimNode>,
    seed: u64,
    cycle: u64,
) -> (Vec<SlotBuffer>, EventCounters) {
    let mut buffers = Vec::new();
    let mut counters = EventCounters::default();
    for (slot, id, node) in chunk.iter_mut() {
        let mut rng = NodeRng::for_node(seed, id.as_u64(), cycle, ACTIVE_SALT);
        let mut out = Vec::new();
        {
            let mut ctx = EngineCtx {
                rng: &mut rng,
                out: &mut out,
                counters: &mut counters,
            };
            node.proto.on_active(node.sampler.view(), &mut ctx);
        }
        if !out.is_empty() {
            buffers.push((slot, out));
        }
    }
    (buffers, counters)
}

/// One scheduled membership exchange: the initiator, its chosen partner
/// (with both slots resolved), and the initiator's membership stream,
/// carried from schedule to execute so the pair consumes exactly the draws
/// a combined `initiate` would.
struct ScheduledExchange {
    id: NodeId,
    slot: usize,
    partner: NodeId,
    partner_slot: usize,
    rng: NodeRng,
}

/// One extracted pair awaiting execution: both endpoints' state plus the
/// initiator's carried stream.
struct ExchangeJob {
    pair: TakenPair<SimNode>,
    rng: NodeRng,
}

/// Runs one scheduled pairwise exchange on an extracted pair. Pure
/// pair-local work: it mutates only the two nodes and draws only from the
/// initiator's carried membership stream, so the pairs of a conflict-free
/// batch can execute on any thread in any order with identical results.
fn run_exchange(job: &mut ExchangeJob) {
    let pair = &mut job.pair;
    let self_entry = pair.a.self_entry();
    let req = pair
        .a
        .sampler
        .initiate_with(pair.b_id, self_entry, &mut job.rng);
    let partner_entry = pair.b.self_entry();
    let reply = pair
        .b
        .sampler
        .handle_request(partner_entry, pair.a_id, &req.entries);
    pair.a.sampler.handle_reply(pair.b_id, &reply);
}

/// Executes one conflict-free batch of exchanges, fanned out across up to
/// `shards` scoped worker threads. Small batches run inline — spawning
/// costs more than it saves there, and the result is identical either way
/// (only wall-clock differs).
fn execute_batch(jobs: &mut [ExchangeJob], shards: usize) {
    /// Minimum pairs that justify putting a worker thread on a batch.
    const MIN_PAIRS_PER_WORKER: usize = 64;
    if shards <= 1 || jobs.len() < 2 * MIN_PAIRS_PER_WORKER {
        for job in jobs.iter_mut() {
            run_exchange(job);
        }
        return;
    }
    let per_worker = jobs.len().div_ceil(shards).max(MIN_PAIRS_PER_WORKER);
    std::thread::scope(|scope| {
        for chunk in jobs.chunks_mut(per_worker) {
            scope.spawn(move || {
                for job in chunk {
                    run_exchange(job);
                }
            });
        }
    });
}

/// Uniformly draws up to `count` distinct items of `pool` whose id differs
/// from `owner` into `out`, sorted by id — the sampling core shared by
/// [`Engine::random_entries`] (bootstrap, churn joins) and the oracle
/// refill, so the two paths cannot drift apart.
///
/// Oversamples by one slot so that filtering the owner out still leaves
/// `count` candidates whenever the pool allows it. Index sampling is
/// O(count) (sparse Fisher–Yates in the vendored `rand`), so sampling the
/// whole population per node — the oracle does this once per node per
/// cycle — stays linear in `n` overall instead of quadratic.
fn sample_from_pool<T: Copy, R: RngCore + ?Sized>(
    rng: &mut R,
    pool: &[T],
    id_of: impl Fn(&T) -> NodeId,
    owner: NodeId,
    count: usize,
    out: &mut Vec<T>,
) {
    out.clear();
    if pool.is_empty() {
        return;
    }
    let want = count.min(pool.len());
    let take = (want + 1).min(pool.len());
    out.extend(
        rand::seq::index::sample(rng, pool.len(), take)
            .into_iter()
            .map(|i| pool[i])
            .filter(|item| id_of(item) != owner)
            .take(want),
    );
    out.sort_unstable_by_key(|item| id_of(item));
}

/// Refills every view in one chunk from the immutable population snapshot
/// (uniform-oracle substrate), each node sampling from its own membership
/// stream. Node-local work, safe on any thread.
fn oracle_refill_chunk(
    mut chunk: SlabChunk<'_, SimNode>,
    pool: &[ViewEntry],
    seed: u64,
    cycle: u64,
    view_size: usize,
) {
    let mut entries: Vec<ViewEntry> = Vec::with_capacity(view_size + 1);
    for (_slot, id, node) in chunk.iter_mut() {
        let mut rng = NodeRng::for_node(seed, id.as_u64(), cycle, MEMBERSHIP_SALT);
        sample_from_pool(&mut rng, pool, |e| e.id, id, view_size, &mut entries);
        node.sampler.refill(&entries);
    }
}

/// Refreshes every view in one chunk against the per-slot published-value
/// snapshot; entries whose node departed are dropped. Node-local work,
/// safe on any thread.
fn refresh_chunk(mut chunk: SlabChunk<'_, SimNode>, lookup: SlotLookup<'_>, published: &[f64]) {
    for (_slot, _id, node) in chunk.iter_mut() {
        node.sampler
            .view_mut()
            .refresh_values(|nid| lookup.slot_of(nid).map(|slot| published[slot]));
    }
}

/// Reusable per-cycle buffers: after the first cycle warms these up, the
/// cycle hot path performs no allocation that scales with `n`.
#[derive(Default)]
struct Scratch {
    /// Latency-drain split: messages due this cycle.
    due: Vec<(NodeId, ProtocolMsg)>,
    /// Latency-drain split: messages still in flight (swapped with
    /// `in_flight` each cycle).
    flying: Vec<(usize, NodeId, ProtocolMsg)>,
    /// Work queue shared by the drain, delivery and deferred phases.
    queue: VecDeque<(NodeId, ProtocolMsg)>,
    /// Overlap-deferred messages awaiting the end-of-cycle drain.
    deferred: Vec<(NodeId, ProtocolMsg)>,
    /// Response staging inside the final drain.
    late: Vec<(NodeId, ProtocolMsg)>,
    /// Membership schedule: one entry per initiating node.
    scheduled: Vec<ScheduledExchange>,
    /// Batch-occupancy bitmask per slot (bit `b` = busy in batch `b`).
    masks: Vec<u128>,
    /// Conflict-free batches, as indices into `scheduled`.
    batches: Vec<Vec<usize>>,
    /// Pairs beyond the 128-batch bitmask (pathological in-degree),
    /// executed sequentially after the batches.
    overflow: Vec<usize>,
    /// Extracted pair state for the batch currently executing.
    jobs: Vec<ExchangeJob>,
    /// Oracle refill: the cycle's population snapshot as view entries.
    pool_entries: Vec<ViewEntry>,
    /// Refresh phase: published value per slot.
    published: Vec<f64>,
}

/// Measures per-phase wall-clock when enabled; a no-op (no clock reads)
/// when disabled.
struct PhaseTimer {
    last: Option<std::time::Instant>,
}

impl PhaseTimer {
    fn new(enabled: bool) -> Self {
        PhaseTimer {
            last: enabled.then(std::time::Instant::now),
        }
    }

    /// Records the time since the previous lap into `slot`, in nanoseconds.
    fn lap(&mut self, slot: &mut u64) {
        if let Some(last) = &mut self.last {
            let now = std::time::Instant::now();
            *slot = now.duration_since(*last).as_nanos() as u64;
            *last = now;
        }
    }
}

/// The deterministic cycle simulator.
pub struct Engine {
    cfg: SimConfig,
    kind: ProtocolKind,
    nodes: NodeSlab<SimNode>,
    alloc: NodeIdAllocator,
    rng: StdRng,
    cycle: usize,
    churn: Box<dyn ChurnModel>,
    /// §3.2 stability tracking: believed slices across cycles.
    tracker: metrics::SliceTracker,
    /// Incrementally maintained attribute ranks / true slices (churn-fed).
    ranks: metrics::RankCache,
    /// Messages delayed across cycles by the latency model:
    /// `(deliver_at_cycle, recipient, payload)`.
    in_flight: Vec<(usize, NodeId, ProtocolMsg)>,
    /// Last fully computed disorder values (repeated on cycles the metrics
    /// cadence skips).
    last_sdm: f64,
    last_gdm: f64,
    /// Reusable per-cycle buffers (see [`Scratch`]).
    scratch: Scratch,
    /// Nodes converted to rank-inflating liars via
    /// [`corrupt_nodes`](Engine::corrupt_nodes); maintained across churn
    /// (a departed liar is forgotten, joiners are honest).
    liars: HashSet<NodeId>,
    /// Network-condition fault injection (partitions, drop rate, region
    /// latency); quiet by default and guaranteed RNG-free while quiet.
    fault: NetworkFault,
    /// Test hook: when `Some`, each step records its membership schedule as
    /// `(initiator, partner, batch)` triples.
    schedule_log: Option<Vec<(u64, u64, usize)>>,
    /// Optional flight recorder (see [`set_tracer`](Engine::set_tracer)).
    /// Strictly observational: recording reads the wall clock and engine
    /// state but never the RNG, so traced runs stay byte-identical to
    /// untraced ones (enforced by test).
    recorder: Option<FlightRecorder>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("protocol", &self.kind.label())
            .field("cycle", &self.cycle)
            .field("population", &self.nodes.len())
            .field("shards", &self.cfg.shards)
            .finish()
    }
}

impl Engine {
    /// Builds an engine with the given configuration and protocol, no churn.
    pub fn new(cfg: SimConfig, kind: ProtocolKind) -> Result<Self> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut alloc = NodeIdAllocator::default();
        let mut nodes = NodeSlab::with_capacity(cfg.n);

        // Create the initial population.
        let ids = alloc.allocate_many(cfg.n);
        for &id in &ids {
            let attribute = cfg.distribution.sample(&mut rng);
            let proto = kind.build(id, attribute, &cfg.partition, &mut rng);
            let sampler = build_sampler(cfg.sampler, id, cfg.view_size)?;
            nodes.insert(id, SimNode { proto, sampler });
        }

        let mut ranks = metrics::RankCache::new();
        ranks.rebuild(nodes.iter().map(|(_, id, n)| (id, n.proto.attribute())));

        let mut engine = Engine {
            cfg,
            kind,
            nodes,
            alloc,
            rng,
            cycle: 0,
            churn: Box::new(NoChurn),
            tracker: metrics::SliceTracker::new(),
            ranks,
            in_flight: Vec::new(),
            last_sdm: 0.0,
            last_gdm: 0.0,
            scratch: Scratch::default(),
            liars: HashSet::new(),
            fault: NetworkFault::default(),
            schedule_log: None,
            recorder: None,
        };
        engine.bootstrap_views(&ids);
        engine.last_sdm = engine.sdm();
        engine.last_gdm = engine.gdm();
        Ok(engine)
    }

    /// Replaces the churn model (builder style).
    pub fn with_churn(mut self, churn: Box<dyn ChurnModel>) -> Self {
        self.churn = churn;
        self
    }

    /// Attaches a flight recorder; subsequent steps record phase spans and
    /// per-cycle churn/swap/defense events on sampled cycles. A disabled
    /// config detaches any existing recorder.
    pub fn set_tracer(&mut self, cfg: TraceConfig) {
        self.recorder = cfg.enabled.then(|| FlightRecorder::new(cfg));
    }

    /// Builder-style [`set_tracer`](Engine::set_tracer).
    pub fn with_tracer(mut self, cfg: TraceConfig) -> Self {
        self.set_tracer(cfg);
        self
    }

    /// The attached flight recorder, if tracing is on.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Detaches and returns the flight recorder (to export its events).
    pub fn take_recorder(&mut self) -> Option<FlightRecorder> {
        self.recorder.take()
    }

    /// Seeds every listed node's view with up to `c` random other nodes.
    fn bootstrap_views(&mut self, ids: &[NodeId]) {
        let all: Vec<NodeId> = self.nodes.ids().collect();
        for &id in ids {
            let entries = self.random_entries(id, self.cfg.view_size, &all);
            if let Some(node) = self.nodes.get_mut(id) {
                node.sampler.bootstrap(&entries);
            }
        }
    }

    /// Draws up to `count` distinct entries describing live nodes ≠ `owner`
    /// (the sampling itself is the shared [`sample_from_pool`] core).
    fn random_entries(&mut self, owner: NodeId, count: usize, pool: &[NodeId]) -> Vec<ViewEntry> {
        let mut chosen: Vec<NodeId> = Vec::new();
        sample_from_pool(&mut self.rng, pool, |&id| id, owner, count, &mut chosen);
        chosen
            .into_iter()
            .filter_map(|id| self.nodes.get(id).map(|n| n.self_entry()))
            .collect()
    }

    /// Test hook for the sampling invariants (no owner, no duplicates):
    /// draws `count` entries for `owner` from the current live population.
    #[doc(hidden)]
    pub fn debug_random_entries(&mut self, owner: NodeId, count: usize) -> Vec<ViewEntry> {
        let pool: Vec<NodeId> = self.nodes.ids().collect();
        self.random_entries(owner, count, &pool)
    }

    /// The current cycle count (number of completed steps).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The current population size.
    pub fn population(&self) -> usize {
        self.nodes.len()
    }

    /// Number of storage slots the node slab has ever allocated (live +
    /// free): the engine's memory footprint is bounded by this — the *peak*
    /// population — not by the number of identities created over the run
    /// (churn reuses slots through the slab's free list).
    pub fn slot_count(&self) -> usize {
        self.nodes.slot_count()
    }

    /// The partition nodes slice against.
    pub fn partition(&self) -> &Partition {
        &self.cfg.partition
    }

    /// Installs a new slice partitioning on every live node (§3.2's global
    /// knowledge, re-broadcast) — the platform re-allocating resources.
    ///
    /// Estimates are partition-independent, so assignments under the new
    /// partitioning are immediately as accurate as the estimates were:
    /// re-slicing costs zero protocol work. `tests/repartitioning.rs`
    /// verifies exactly that.
    pub fn set_partition(&mut self, partition: Partition) {
        self.cfg.partition = partition;
        for (_, _, node) in self.nodes.iter_mut() {
            node.proto.set_partition(&self.cfg.partition);
        }
        // Believed slices under the old partitioning are not comparable to
        // the new one; restart stability tracking rather than report a
        // spurious all-nodes-changed spike.
        self.tracker = metrics::SliceTracker::new();
        // The cached disorder values refer to the old partitioning too.
        self.last_sdm = self.sdm();
        self.last_gdm = self.gdm();
    }

    /// Internal population walk in slot order (the engine's canonical
    /// deterministic order): `(id, attribute, estimate)`.
    fn snapshot_slots(&self) -> Vec<(NodeId, Attribute, f64)> {
        self.nodes
            .iter()
            .map(|(_, id, n)| (id, n.proto.attribute(), n.proto.estimate()))
            .collect()
    }

    /// Snapshot of the live population, sorted by node id:
    /// `(id, attribute, estimate)`.
    pub fn snapshot(&self) -> Vec<(NodeId, Attribute, f64)> {
        let mut snapshot = self.snapshot_slots();
        snapshot.sort_unstable_by_key(|&(id, _, _)| id);
        snapshot
    }

    /// The slice disorder measure of the current population — O(n) via the
    /// churn-maintained rank cache.
    pub fn sdm(&self) -> f64 {
        self.ranks.sdm(
            &self.cfg.partition,
            self.nodes.iter().map(|(_, id, n)| (id, n.proto.estimate())),
        )
    }

    /// The global disorder measure of the current population.
    pub fn gdm(&self) -> f64 {
        metrics::gdm(&self.snapshot_slots())
    }

    /// Fraction of nodes whose believed slice equals their true slice —
    /// O(n) via the churn-maintained rank cache.
    pub fn accuracy(&self) -> f64 {
        self.ranks.accuracy(
            &self.cfg.partition,
            self.nodes.iter().map(|(_, id, n)| (id, n.proto.estimate())),
        )
    }

    /// Converts a deterministic random sample of the live, still-honest
    /// population into rank-inflating liars
    /// ([`Liar`]): each chosen node keeps its
    /// protocol state but claims `estimate × inflation` (clamped to 1) on
    /// every external surface, poisons its outgoing swap/update traffic, and
    /// refuses incoming swaps. Returns how many nodes were corrupted
    /// (`round(still-honest × fraction)`).
    ///
    /// The selection draws from the engine's sequential RNG, so runs remain
    /// byte-identical at any shard count. Attributes stay truthful: the
    /// evaluation oracle keeps measuring ground truth, and
    /// [`honest_accuracy`](Engine::honest_accuracy) measures the collateral
    /// damage on the honest majority.
    pub fn corrupt_nodes(&mut self, fraction: f64, inflation: f64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut honest: Vec<NodeId> = self
            .nodes
            .ids()
            .filter(|id| !self.liars.contains(id))
            .collect();
        // Slot order varies with churn history; id order is canonical.
        honest.sort_unstable();
        let count = ((honest.len() as f64) * fraction).round() as usize;
        let count = count.min(honest.len());
        if count == 0 {
            return 0;
        }
        let mut chosen: Vec<NodeId> = rand::seq::index::sample(&mut self.rng, honest.len(), count)
            .into_iter()
            .map(|i| honest[i])
            .collect();
        chosen.sort_unstable();
        self.make_liars(&chosen, inflation);
        count
    }

    /// Converts the honest nodes whose *true* ranks sit closest to slice
    /// boundaries into rank-inflating liars — the targeted variant of
    /// [`corrupt_nodes`](Engine::corrupt_nodes). A boundary node needs to
    /// move its estimate only marginally to defect to the adjacent slice,
    /// and its poisoned samples land exactly where the ranking family's
    /// `j1` boundary targeting concentrates traffic, so this adversary gets
    /// the most displacement per corrupted node. Returns how many nodes
    /// were corrupted (`round(still-honest × fraction)`).
    ///
    /// Selection is a pure function of the live population (true ranks from
    /// the attribute order, ties broken by id) — no RNG is consumed, so
    /// determinism across shard counts is trivial and the engine's
    /// sequential RNG stream is left untouched for later events.
    pub fn corrupt_boundary_nodes(&mut self, fraction: f64, inflation: f64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        // True normalized ranks over the *full* live population: sort by
        // (attribute, id) exactly as the evaluation oracle does.
        let mut by_attr: Vec<(NodeId, f64)> = self
            .nodes
            .iter()
            .map(|(_, id, n)| (id, n.proto.attribute().value()))
            .collect();
        by_attr.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let n = by_attr.len();
        let mut honest: Vec<(f64, NodeId)> = by_attr
            .iter()
            .enumerate()
            .filter(|(_, (id, _))| !self.liars.contains(id))
            .map(|(pos, (id, _))| {
                let rank = (pos + 1) as f64 / n as f64;
                (self.cfg.partition.boundary_distance(rank), *id)
            })
            .collect();
        let count = ((honest.len() as f64) * fraction).round() as usize;
        let count = count.min(honest.len());
        if count == 0 {
            return 0;
        }
        honest.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut chosen: Vec<NodeId> = honest[..count].iter().map(|&(_, id)| id).collect();
        chosen.sort_unstable();
        self.make_liars(&chosen, inflation);
        count
    }

    /// Converts a deterministic random sample of the live, still-honest
    /// population into *adaptive* adversaries — the reactive counterpart of
    /// [`corrupt_nodes`](Engine::corrupt_nodes). Each chosen node keeps its
    /// protocol state but is wrapped in
    /// [`Adaptive`] running the given
    /// [`AttackerSpec`] (`spec.validate()`
    /// must have passed — invalid specs panic here, mirroring
    /// [`ProtocolKind::build`]). Returns how many nodes were corrupted
    /// (`round(still-honest × fraction)`).
    ///
    /// Selection draws from the engine's sequential RNG exactly like
    /// [`corrupt_nodes`](Engine::corrupt_nodes) — same pool ordering, same
    /// draw count — so swapping a static attack for an adaptive one in a
    /// scenario perturbs nothing upstream of the attackers' behavior.
    /// The attackers themselves consume no randomness at all.
    pub fn corrupt_adaptive(&mut self, fraction: f64, spec: AttackerSpec) -> usize {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid attacker spec: {e}"));
        let fraction = fraction.clamp(0.0, 1.0);
        let mut honest: Vec<NodeId> = self
            .nodes
            .ids()
            .filter(|id| !self.liars.contains(id))
            .collect();
        // Slot order varies with churn history; id order is canonical.
        honest.sort_unstable();
        let count = ((honest.len() as f64) * fraction).round() as usize;
        let count = count.min(honest.len());
        if count == 0 {
            return 0;
        }
        let mut chosen: Vec<NodeId> = rand::seq::index::sample(&mut self.rng, honest.len(), count)
            .into_iter()
            .map(|i| honest[i])
            .collect();
        chosen.sort_unstable();
        for &id in &chosen {
            let Some((slot, node)) = self.nodes.take(id) else {
                continue;
            };
            let SimNode { proto, sampler } = node;
            self.nodes.put_back(
                slot,
                id,
                SimNode {
                    proto: Box::new(Adaptive::new(proto, spec)),
                    sampler,
                },
            );
            self.liars.insert(id);
        }
        count
    }

    /// Wraps each listed live node's protocol in a [`Liar`] with the given
    /// inflation factor and registers it in the liar set.
    fn make_liars(&mut self, chosen: &[NodeId], inflation: f64) {
        for &id in chosen {
            let Some((slot, node)) = self.nodes.take(id) else {
                continue;
            };
            let SimNode { proto, sampler } = node;
            self.nodes.put_back(
                slot,
                id,
                SimNode {
                    proto: Box::new(Liar::new(proto, inflation)),
                    sampler,
                },
            );
            self.liars.insert(id);
        }
    }

    /// Partitions the network into `bands ≥ 2` equal-population contiguous
    /// attribute bands (see [`BandPartition`]), optionally healing itself
    /// at cycle `heal_at`. While the partition holds, protocol messages and
    /// membership exchanges crossing bands are severed and counted as
    /// dropped; the uniform-oracle substrate and joiner bootstrap are *not*
    /// constrained (they model out-of-band services). Replaces any
    /// previously installed partition and clears its region overrides.
    ///
    /// Band boundaries are frozen from the current live population and
    /// consume no RNG, so installing (and healing) a partition never shifts
    /// the engine's random stream.
    pub fn set_network_partition(&mut self, bands: usize, heal_at: Option<usize>) -> Result<()> {
        let attributes: Vec<f64> = self
            .nodes
            .iter()
            .map(|(_, _, n)| n.proto.attribute().value())
            .collect();
        let partition = BandPartition::from_attributes(bands, &attributes, heal_at)?;
        self.fault.install_partition(partition);
        Ok(())
    }

    /// Tears down the installed network partition (and its region latency
    /// overrides). Idempotent; consumes no RNG.
    pub fn heal_network_partition(&mut self) {
        self.fault.heal();
    }

    /// Sets the probability in `[0, 1)` that any routed message is lost
    /// (on top of [`SimConfig::loss_rate`]; the coin is flipped per message
    /// only while the rate is non-zero).
    pub fn set_drop_rate(&mut self, rate: f64) -> Result<()> {
        self.fault.set_drop_rate(rate)
    }

    /// Overrides the latency of messages delivered *into* band `region` of
    /// the installed network partition (asymmetric long-haul links). Fails
    /// without an installed partition.
    pub fn set_region_latency(&mut self, region: usize, model: LatencyModel) -> Result<()> {
        self.fault.set_region_latency(region, model)
    }

    /// Read access to the network-fault state.
    pub fn network_fault(&self) -> &NetworkFault {
        &self.fault
    }

    /// Number of live lying nodes.
    pub fn liar_count(&self) -> usize {
        self.liars.len()
    }

    /// Whether `id` is a live lying node.
    pub fn is_liar(&self, id: NodeId) -> bool {
        self.liars.contains(&id)
    }

    /// [`accuracy`](Engine::accuracy) restricted to the honest population:
    /// the fraction of *non-lying* nodes whose believed slice equals their
    /// true slice (true slices are still computed over the full population —
    /// liars occupy real attribute ranks). With no liars this equals
    /// [`accuracy`](Engine::accuracy); under attack it isolates the
    /// collateral damage on honest nodes from the liars' deliberate
    /// self-misplacement.
    pub fn honest_accuracy(&self) -> f64 {
        self.ranks.accuracy(
            &self.cfg.partition,
            self.nodes
                .iter()
                .filter(|(_, id, _)| !self.liars.contains(id))
                .map(|(_, id, n)| (id, n.proto.estimate())),
        )
    }

    /// Population of each slice according to the nodes' *current beliefs*
    /// (index = slice index). Sums to the population size.
    pub fn slice_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cfg.partition.len()];
        for (_, _, node) in self.nodes.iter() {
            counts[self
                .cfg
                .partition
                .slice_of(node.proto.estimate())
                .as_usize()] += 1;
        }
        counts
    }

    /// Runs `cycles` steps and records per-cycle statistics.
    pub fn run(&mut self, cycles: usize) -> RunRecord {
        let mut record = RunRecord {
            label: self.kind.label().to_string(),
            seed: self.cfg.seed,
            initial_n: self.cfg.n,
            slices: self.cfg.partition.len(),
            view_size: self.cfg.view_size,
            cycles: Vec::with_capacity(cycles),
            phase_ns: None,
        };
        for _ in 0..cycles {
            record.cycles.push(self.step());
        }
        if self.cfg.time_phases {
            let mut totals = PhaseTimings::default();
            for stats in &record.cycles {
                if let Some(t) = &stats.timings {
                    totals.accumulate(t);
                }
            }
            record.phase_ns = Some(totals);
        }
        record
    }

    /// Executes one full cycle and returns its statistics.
    pub fn step(&mut self) -> CycleStats {
        self.cycle += 1;
        // Scheduled partition heal: the heal cycle itself runs connected.
        if self.fault.due_heal(self.cycle) {
            self.heal_network_partition();
        }
        let mut timings = PhaseTimings::default();
        // Tracing needs the laps too, but never changes what lands in
        // `CycleStats` (which stays gated on `time_phases` alone).
        let trace_cycle = self
            .recorder
            .as_ref()
            .is_some_and(|r| r.wants_cycle(self.cycle as u64));
        let cycle_start_ns = if trace_cycle {
            self.recorder.as_ref().map(|r| r.now_ns()).unwrap_or(0)
        } else {
            0
        };
        let mut timer = PhaseTimer::new(self.cfg.time_phases || trace_cycle);

        let (left, joined) = self.apply_churn();
        timer.lap(&mut timings.churn_ns);

        let mut counters = EventCounters::default();
        let mut dropped = 0u64;

        // Latency drain: messages whose latency elapsed land now, in random
        // order, before anyone's active step — the paper's staleness
        // scenario stretched across cycles. Their responses re-enter the
        // normal routing (and may themselves be delayed again).
        let mut due = mem::take(&mut self.scratch.due);
        due.clear();
        let mut flying = mem::take(&mut self.scratch.flying);
        flying.clear();
        for (at, to, msg) in self.in_flight.drain(..) {
            if at <= self.cycle {
                due.push((to, msg));
            } else {
                flying.push((at, to, msg));
            }
        }
        // The drained vector keeps its capacity for next cycle's split.
        mem::swap(&mut self.in_flight, &mut flying);
        self.scratch.flying = flying;
        due.shuffle(&mut self.rng);
        let mut queue = mem::take(&mut self.scratch.queue);
        queue.clear();
        queue.extend(due.drain(..));
        self.scratch.due = due;
        let mut deferred = mem::take(&mut self.scratch.deferred);
        deferred.clear();
        while let Some((to, msg)) = queue.pop_front() {
            for (to2, msg2) in self.deliver(to, msg, false, &mut counters, &mut dropped) {
                if let Some(now) = self.route(to2, msg2, &mut deferred, &mut dropped) {
                    queue.push_back(now);
                }
            }
        }
        timer.lap(&mut timings.drain_ns);

        // Membership phase: schedule → conflict-free batches → sharded
        // execute (see module docs). A network partition severs cross-band
        // exchanges here too (their REQ′ never crosses).
        self.membership_phase(&mut dropped);
        timer.lap(&mut timings.membership_ns);

        // Refresh phase: every value snapshot in every view is brought up to
        // date ("the view is up-to-date when a message is sent", §4.5.2) —
        // sharded, against the per-slot published-value snapshot.
        if self.cfg.concurrency.fresh_views() {
            self.refresh_phase();
        }
        timer.lap(&mut timings.refresh_ns);

        // Active phase: node-local protocol steps on per-node RNG streams,
        // sharded across worker threads; buffers merged in slot order.
        let phase_buffers = self.active_phase(&mut counters);
        timer.lap(&mut timings.active_ns);

        // Delivery phase, in slot order. Non-overlapping messages complete
        // as atomic exchanges (with conflict replay, see module docs);
        // overlapping ones join the end-of-cycle drain. (`queue` is empty
        // again at the top of every iteration.)
        for (_slot, out) in phase_buffers {
            for (to, msg) in out {
                if let Some(now) = self.route(to, msg, &mut deferred, &mut dropped) {
                    queue.push_back(now);
                }
            }
            while let Some((to, msg)) = queue.pop_front() {
                for (to2, msg2) in self.deliver(to, msg, true, &mut counters, &mut dropped) {
                    if let Some(now) = self.route(to2, msg2, &mut deferred, &mut dropped) {
                        queue.push_back(now);
                    }
                }
            }
        }

        // End-of-cycle drain: overlapping messages land in random order;
        // their responses are also in flight within this cycle (unless the
        // latency model pushes them into a later one).
        deferred.shuffle(&mut self.rng);
        queue.extend(deferred.drain(..));
        self.scratch.deferred = deferred;
        let mut late = mem::take(&mut self.scratch.late);
        while let Some((to, msg)) = queue.pop_front() {
            late.clear();
            for response in self.deliver(to, msg, false, &mut counters, &mut dropped) {
                if let Some(now) = self.route(response.0, response.1, &mut late, &mut dropped) {
                    queue.push_back(now);
                }
            }
            // Responses that drew an "overlapping" coin inside the final
            // drain have no later drain this cycle; they join the queue.
            queue.extend(late.drain(..));
        }
        self.scratch.late = late;
        self.scratch.queue = queue;
        timer.lap(&mut timings.delivery_ns);

        // Metrics, on the configured cadence.
        let n = self.nodes.len();
        let (sdm, gdm, slice_changes) = if self.cycle.is_multiple_of(self.cfg.metrics_every) {
            let snapshot = self.snapshot_slots();
            let sdm = self.ranks.sdm(
                &self.cfg.partition,
                snapshot.iter().map(|&(id, _, est)| (id, est)),
            );
            let gdm = metrics::gdm(&snapshot);
            let slice_changes = self.tracker.observe(&self.cfg.partition, &snapshot);
            self.last_sdm = sdm;
            self.last_gdm = gdm;
            (sdm, gdm, slice_changes)
        } else {
            (self.last_sdm, self.last_gdm, 0)
        };
        timer.lap(&mut timings.metrics_ns);

        if trace_cycle {
            if let Some(rec) = &mut self.recorder {
                const PHASES: [TraceKind; 7] = [
                    TraceKind::PhaseChurn,
                    TraceKind::PhaseDrain,
                    TraceKind::PhaseMembership,
                    TraceKind::PhaseRefresh,
                    TraceKind::PhaseActive,
                    TraceKind::PhaseDelivery,
                    TraceKind::PhaseMetrics,
                ];
                let cycle = self.cycle as u64;
                let mut ts = cycle_start_ns;
                for (kind, (_, dur)) in PHASES.into_iter().zip(timings.rows()) {
                    rec.span(kind, cycle, ts, dur);
                    ts += dur;
                }
                if left + joined > 0 {
                    rec.instant(
                        TraceKind::CycleChurn,
                        cycle,
                        None,
                        joined as u64,
                        left as u64,
                    );
                }
                if counters.swaps_applied + counters.swaps_useless > 0 {
                    rec.instant(
                        TraceKind::CycleSwaps,
                        cycle,
                        None,
                        counters.swaps_applied,
                        counters.swaps_useless,
                    );
                }
                if counters.samples_rejected + counters.swaps_abandoned > 0 {
                    rec.instant(
                        TraceKind::CycleDefense,
                        cycle,
                        None,
                        counters.samples_rejected,
                        counters.swaps_abandoned,
                    );
                }
            }
        }

        CycleStats {
            cycle: self.cycle,
            n,
            sdm,
            gdm,
            events: counters,
            dropped_messages: dropped,
            left,
            joined,
            slice_changes,
            timings: self.cfg.time_phases.then_some(timings),
        }
    }

    /// Executes the membership phase as schedule → batch → execute (see
    /// module docs). The uniform-oracle substrate goes through
    /// [`oracle_refill_phase`](Engine::oracle_refill_phase) instead (and is
    /// deliberately *not* constrained by network partitions — it models an
    /// out-of-band sampling service). Scheduled exchanges crossing an
    /// installed partition are severed and counted in `dropped`.
    fn membership_phase(&mut self, dropped: &mut u64) {
        if self.cfg.sampler == SamplerKind::UniformOracle {
            self.oracle_refill_phase();
            return;
        }
        let seed = self.cfg.seed;
        let cycle = self.cycle as u64;

        // Schedule: every live node's partner choice, drawn from its own
        // counter-based stream — independent of every other node's draws,
        // against its start-of-phase view.
        let mut scheduled = mem::take(&mut self.scratch.scheduled);
        scheduled.clear();
        for (slot, id, node) in self.nodes.iter_mut() {
            let mut rng = NodeRng::for_node(seed, id.as_u64(), cycle, MEMBERSHIP_SALT);
            if let Some(partner) = node.sampler.schedule_exchange(&mut rng) {
                scheduled.push(ScheduledExchange {
                    id,
                    slot,
                    partner,
                    partner_slot: usize::MAX,
                    rng,
                });
            }
        }

        // Resolve partner slots. A partner that is not alive (possible only
        // for same-cycle stale entries) costs the initiator that pointer and
        // its exchange, exactly as in the sequential model.
        for s in &mut scheduled {
            match self.nodes.slot_of(s.partner) {
                Some(partner_slot) => s.partner_slot = partner_slot,
                None => {
                    if let Some(node) = self.nodes.get_mut(s.id) {
                        node.sampler.view_mut().remove(s.partner);
                    }
                }
            }
        }
        scheduled.retain(|s| s.partner_slot != usize::MAX);

        // Partition gating: a cross-band exchange's REQ′ never crosses —
        // the pair is severed before batching (the initiator keeps its
        // stale pointer; failure detection is the view's business, not the
        // partition's). RNG-free: band membership is a pure attribute
        // lookup against the frozen cuts.
        if let Some(partition) = self.fault.partition() {
            let nodes = &self.nodes;
            scheduled.retain(|s| {
                let connected = match (nodes.get(s.id), nodes.get(s.partner)) {
                    (Some(a), Some(b)) => {
                        partition.band_of(a.proto.attribute().value())
                            == partition.band_of(b.proto.attribute().value())
                    }
                    _ => false,
                };
                if !connected {
                    *dropped += 1;
                }
                connected
            });
        }

        // Batch: greedy first-fit, in slot order, into conflict-free
        // batches — no node appears twice within one batch. Occupancy is a
        // 128-bit mask per slot; a pair whose endpoints' first common free
        // batch exceeds 128 (in-degree > 127, pathological) overflows into
        // a sequential tail.
        let mut masks = mem::take(&mut self.scratch.masks);
        masks.clear();
        masks.resize(self.nodes.slot_count(), 0u128);
        let mut batches = mem::take(&mut self.scratch.batches);
        for batch in &mut batches {
            batch.clear();
        }
        let mut overflow = mem::take(&mut self.scratch.overflow);
        overflow.clear();
        let mut used_batches = 0usize;
        for (idx, s) in scheduled.iter().enumerate() {
            let busy = masks[s.slot] | masks[s.partner_slot];
            let batch = (!busy).trailing_zeros() as usize;
            if batch >= 128 {
                overflow.push(idx);
                continue;
            }
            masks[s.slot] |= 1 << batch;
            masks[s.partner_slot] |= 1 << batch;
            if batch >= batches.len() {
                batches.push(Vec::new());
            }
            batches[batch].push(idx);
            used_batches = used_batches.max(batch + 1);
        }

        if let Some(log) = &mut self.schedule_log {
            log.clear();
            for (batch, members) in batches.iter().enumerate().take(used_batches) {
                for &idx in members {
                    let s = &scheduled[idx];
                    log.push((s.id.as_u64(), s.partner.as_u64(), batch));
                }
            }
            for (offset, &idx) in overflow.iter().enumerate() {
                let s = &scheduled[idx];
                // Overflow pairs execute one at a time: singleton batches.
                log.push((s.id.as_u64(), s.partner.as_u64(), 128 + offset));
            }
        }

        // Execute: batches in order; within a batch the pairs are disjoint
        // and each draws only from its carried stream, so the partition
        // across worker threads is invisible in the result.
        let shards = self.cfg.shards;
        let mut jobs = mem::take(&mut self.scratch.jobs);
        for batch in batches.iter().take(used_batches) {
            jobs.clear();
            for &idx in batch {
                let s = &scheduled[idx];
                if let Some(pair) = self.nodes.take_pair(s.id, s.partner) {
                    jobs.push(ExchangeJob {
                        pair,
                        rng: s.rng.clone(),
                    });
                }
            }
            execute_batch(&mut jobs, shards);
            for job in jobs.drain(..) {
                self.nodes.put_back_pair(job.pair);
            }
        }
        for &idx in overflow.iter() {
            let s = &scheduled[idx];
            if let Some(pair) = self.nodes.take_pair(s.id, s.partner) {
                let mut job = ExchangeJob {
                    pair,
                    rng: s.rng.clone(),
                };
                run_exchange(&mut job);
                self.nodes.put_back_pair(job.pair);
            }
        }

        self.scratch.scheduled = scheduled;
        self.scratch.masks = masks;
        self.scratch.batches = batches;
        self.scratch.overflow = overflow;
        self.scratch.jobs = jobs;
    }

    /// Membership phase of the uniform-oracle substrate: snapshot the
    /// population once (it is invariant within a cycle — churn only happens
    /// at cycle start), then refill every view from it in sharded chunks,
    /// each node sampling from its own membership stream.
    fn oracle_refill_phase(&mut self) {
        let seed = self.cfg.seed;
        let cycle = self.cycle as u64;
        let view_size = self.cfg.view_size;
        let shards = self.cfg.shards;

        let mut pool = mem::take(&mut self.scratch.pool_entries);
        pool.clear();
        pool.extend(self.nodes.iter().map(|(_, _, n)| n.self_entry()));

        if let Some(log) = &mut self.schedule_log {
            log.clear(); // the oracle never schedules exchanges
        }

        let chunks = self.nodes.chunks_mut(shards);
        if shards <= 1 {
            for chunk in chunks {
                oracle_refill_chunk(chunk, &pool, seed, cycle, view_size);
            }
        } else {
            let pool_ref: &[ViewEntry] = &pool;
            std::thread::scope(|scope| {
                for chunk in chunks {
                    scope.spawn(move || {
                        oracle_refill_chunk(chunk, pool_ref, seed, cycle, view_size)
                    });
                }
            });
        }
        self.scratch.pool_entries = pool;
    }

    /// Refresh phase: snapshot every node's published value per slot, then
    /// refresh all views in sharded chunks against the immutable snapshot.
    /// Published values are protocol state the refresh never touches, so
    /// this is semantically identical to a sequential sweep.
    fn refresh_phase(&mut self) {
        let shards = self.cfg.shards;
        let mut published = mem::take(&mut self.scratch.published);
        published.clear();
        published.resize(self.nodes.slot_count(), 0.0);
        for (slot, _, node) in self.nodes.iter() {
            published[slot] = node.proto.published_value();
        }
        let (chunks, lookup) = self.nodes.chunks_mut_with_lookup(shards);
        if shards <= 1 {
            for chunk in chunks {
                refresh_chunk(chunk, lookup, &published);
            }
        } else {
            let published_ref: &[f64] = &published;
            std::thread::scope(|scope| {
                for chunk in chunks {
                    scope.spawn(move || refresh_chunk(chunk, lookup, published_ref));
                }
            });
        }
        self.scratch.published = published;
    }

    /// Test hook: toggles recording of the membership exchange schedule;
    /// each subsequent step stores `(initiator, partner, batch)` triples
    /// retrievable via [`debug_last_schedule`](Engine::debug_last_schedule).
    #[doc(hidden)]
    pub fn debug_record_schedule(&mut self, enabled: bool) {
        self.schedule_log = enabled.then(Vec::new);
    }

    /// Test hook: the schedule recorded by the most recent step (empty for
    /// the oracle substrate, or when recording is off).
    #[doc(hidden)]
    pub fn debug_last_schedule(&self) -> &[(u64, u64, usize)] {
        self.schedule_log.as_deref().unwrap_or(&[])
    }

    /// Runs the active phase, partitioned across `cfg.shards` scoped worker
    /// threads (inline when 1), and returns the per-slot outgoing buffers
    /// merged in slot order.
    fn active_phase(&mut self, counters: &mut EventCounters) -> Vec<SlotBuffer> {
        let seed = self.cfg.seed;
        let cycle = self.cycle as u64;
        let shards = self.cfg.shards;

        if shards <= 1 {
            let Some(chunk) = self.nodes.chunks_mut(1).into_iter().next() else {
                return Vec::new();
            };
            let (buffers, chunk_counters) = active_chunk(chunk, seed, cycle);
            counters.merge(&chunk_counters);
            return buffers;
        }

        let chunks = self.nodes.chunks_mut(shards);
        let mut results: Vec<(Vec<SlotBuffer>, EventCounters)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                handles.push(scope.spawn(move || active_chunk(chunk, seed, cycle)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("active-phase worker panicked"))
                .collect()
        });

        // Merge: chunks cover ascending slot ranges, buffers within a chunk
        // are ascending too — concatenation in chunk order IS slot order.
        let mut buffers = Vec::with_capacity(results.iter().map(|(b, _)| b.len()).sum());
        for (chunk_buffers, chunk_counters) in results.drain(..) {
            buffers.extend(chunk_buffers);
            counters.merge(&chunk_counters);
        }
        buffers
    }

    /// Routes one outgoing message: drops it (loss), holds it across cycles
    /// (latency), defers it within the cycle (overlap), or returns it for
    /// immediate delivery.
    fn route(
        &mut self,
        to: NodeId,
        msg: ProtocolMsg,
        deferred: &mut Vec<(NodeId, ProtocolMsg)>,
        dropped: &mut u64,
    ) -> Option<(NodeId, ProtocolMsg)> {
        // Fault injection first: a quiet fault (the default) takes neither
        // branch and flips no coin, keeping fault-free runs byte-identical.
        if !self.fault.is_quiet() {
            if self.fault_severed(to, &msg) {
                *dropped += 1;
                return None;
            }
            if self.fault_dropped(dropped) {
                return None;
            }
        }
        if self.lost(dropped) {
            return None;
        }
        let delay = self.delivery_latency(to).sample(&mut self.rng);
        if delay > 0 {
            self.in_flight.push((self.cycle + delay as usize, to, msg));
            return None;
        }
        if self.cfg.concurrency.overlaps(&mut self.rng) {
            deferred.push((to, msg));
            return None;
        }
        Some((to, msg))
    }

    /// Whether `msg`'s delivery to `to` crosses an installed network
    /// partition (both endpoints live in different attribute bands).
    /// Consumes no RNG; a departed endpoint is not this check's concern
    /// (delivery handles it).
    fn fault_severed(&self, to: NodeId, msg: &ProtocolMsg) -> bool {
        if self.fault.partition().is_none() {
            return false;
        }
        match (self.nodes.get(msg.from()), self.nodes.get(to)) {
            (Some(f), Some(t)) => self
                .fault
                .severed(f.proto.attribute().value(), t.proto.attribute().value()),
            _ => false,
        }
    }

    /// Draws the fault-injection drop coin for one message (counts a drop
    /// on loss). The coin is flipped only while a non-zero drop rate is
    /// configured, mirroring [`lost`](Engine::lost).
    fn fault_dropped(&mut self, dropped: &mut u64) -> bool {
        use rand::Rng;
        if self.fault.drop_rate() > 0.0 && self.rng.gen::<f64>() < self.fault.drop_rate() {
            *dropped += 1;
            true
        } else {
            false
        }
    }

    /// The latency model governing delivery to `to`: the recipient band's
    /// fault override while a partition holds, the configured model
    /// otherwise.
    fn delivery_latency(&self, to: NodeId) -> LatencyModel {
        if self.fault.partition().is_none() {
            return self.cfg.latency;
        }
        self.nodes
            .get(to)
            .and_then(|n| self.fault.latency_override(n.proto.attribute().value()))
            .unwrap_or(self.cfg.latency)
    }

    /// Draws the loss coin for one message (counts a drop on loss).
    fn lost(&mut self, dropped: &mut u64) -> bool {
        use rand::Rng;
        if self.cfg.loss_rate > 0.0 && self.rng.gen::<f64>() < self.cfg.loss_rate {
            *dropped += 1;
            true
        } else {
            false
        }
    }

    /// Applies the churn plan for this cycle; returns `(left, joined)`.
    fn apply_churn(&mut self) -> (usize, usize) {
        let population: Vec<(NodeId, Attribute)> = if self.churn.needs_population() {
            self.nodes
                .iter()
                .map(|(_, id, n)| (id, n.proto.attribute()))
                .collect()
        } else {
            Vec::new()
        };
        let plan = self.churn.plan(self.cycle, &population, &mut self.rng);
        if plan.is_quiet() {
            return (0, 0);
        }

        let mut removed: Vec<NodeId> = Vec::with_capacity(plan.leavers.len());
        for id in &plan.leavers {
            if self.nodes.remove(*id).is_some() {
                removed.push(*id);
            }
        }
        let left = removed.len();
        if !self.liars.is_empty() {
            for id in &removed {
                self.liars.remove(id);
            }
        }

        // Prune departed neighbors from every view before anyone gossips —
        // only when someone actually departed (a join-only cycle at 10⁵
        // nodes must not pay an O(n·c) scan for leavers that cannot exist).
        if !removed.is_empty() {
            let alive: HashSet<NodeId> = self.nodes.ids().collect();
            let is_alive = |id: NodeId| alive.contains(&id);
            for (_, _, node) in self.nodes.iter_mut() {
                node.sampler.remove_dead(&is_alive);
            }
        }

        // Joiners: fresh identity, fresh protocol state, bootstrapped view.
        let joined = plan.joiners.len();
        let mut new_nodes = Vec::with_capacity(joined);
        if joined > 0 {
            let pool: Vec<NodeId> = self.nodes.ids().collect();
            for attribute in plan.joiners {
                let id = self.alloc.allocate();
                let proto = self
                    .kind
                    .build(id, attribute, &self.cfg.partition, &mut self.rng);
                let sampler = build_sampler(self.cfg.sampler, id, self.cfg.view_size)
                    .expect("validated capacity");
                self.nodes.insert(id, SimNode { proto, sampler });
                new_nodes.push((id, attribute));
            }
            for &(id, _) in &new_nodes {
                let entries = self.random_entries(id, self.cfg.view_size, &pool);
                if let Some(node) = self.nodes.get_mut(id) {
                    node.sampler.bootstrap(&entries);
                }
            }
        }
        // Fold the batch into the rank cache: a linear merge, no re-sort.
        self.ranks.apply_churn(&removed, &new_nodes);
        (left, joined)
    }

    /// Takes `id`'s state out of the slab, runs `f` against the rest of the
    /// engine, and puts the state back — the borrow-splitting pattern every
    /// single-node mutation path shares. Returns `None` (without calling
    /// `f`) when `id` is not live.
    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut Self, &mut SimNode) -> R,
    ) -> Option<R> {
        let (slot, mut node) = self.nodes.take(id)?;
        let result = f(self, &mut node);
        self.nodes.put_back(slot, id, node);
        Some(result)
    }

    /// Refreshes every value snapshot in `id`'s view from the live nodes —
    /// the "view is up-to-date when a message is sent" idealization of the
    /// atomic cycle model (§4.5.2). Departed neighbors are dropped. The
    /// single-node form of [`refresh_phase`](Engine::refresh_phase), used on
    /// the replay path.
    fn refresh_view(&mut self, id: NodeId) {
        self.with_node(id, |engine, node| {
            node.sampler
                .view_mut()
                .refresh_values(|nid| engine.nodes.get(nid).map(|n| n.proto.published_value()));
        });
    }

    /// Replays a conflicted atomic exchange: the proposer's view is brought
    /// up to date and its active step re-runs (on the replay stream), as if
    /// its atomic turn came after the exchange that invalidated its
    /// original proposal. The replayed messages resolve immediately — they
    /// are the second half of one atomic action, so they draw no new
    /// routing coins and cannot themselves be replayed.
    fn replay_exchange(&mut self, from: NodeId, counters: &mut EventCounters, dropped: &mut u64) {
        // The aborted proposal never happened under atomic semantics;
        // un-count it (its replacement, if any, records itself).
        counters.swaps_proposed = counters.swaps_proposed.saturating_sub(1);
        self.refresh_view(from);
        let Some(out) = self.with_node(from, |engine, node| {
            let mut out = Vec::new();
            let mut rng = NodeRng::for_node(
                engine.cfg.seed,
                from.as_u64(),
                engine.cycle as u64,
                REPLAY_SALT,
            );
            let mut ctx = EngineCtx {
                rng: &mut rng,
                out: &mut out,
                counters,
            };
            node.proto.on_active(node.sampler.view(), &mut ctx);
            out
        }) else {
            return;
        };
        let mut queue: VecDeque<(NodeId, ProtocolMsg)> = out.into();
        while let Some((to, msg)) = queue.pop_front() {
            for response in self.deliver(to, msg, false, counters, dropped) {
                queue.push_back(response);
            }
        }
    }

    /// Delivers one message; returns the responses it provoked.
    ///
    /// `SwapReq` messages are resolved *transactionally* (see
    /// [`SliceProtocol::try_atomic_swap`]): the paper's cycle-based
    /// evaluation semantics, under which a stale proposal means "the
    /// expected swap does not occur" — never a half-completed exchange.
    /// `atomic` is true on the immediate (non-overlapping, zero-latency)
    /// path, where a conflicted proposal is replayed instead of counted
    /// stale (see [`Engine::replay_exchange`] and the module docs). All
    /// other messages take the ordinary `on_message` path.
    fn deliver(
        &mut self,
        to: NodeId,
        msg: ProtocolMsg,
        atomic: bool,
        counters: &mut EventCounters,
        dropped: &mut u64,
    ) -> Vec<(NodeId, ProtocolMsg)> {
        if let ProtocolMsg::SwapReq { from, a, .. } = msg {
            if self.nodes.get(to).is_none() || self.nodes.get(from).is_none() {
                // Either endpoint departed mid-flight: the exchange cannot
                // complete; the message is lost.
                *dropped += 1;
                return Vec::new();
            }
            // The proposal is evaluated against the proposer's *current*
            // value; the snapshot in the message only matters on real wires.
            let current_r = self
                .nodes
                .get(from)
                .expect("checked above")
                .proto
                .estimate();
            let callee = self.nodes.get_mut(to).expect("checked above");
            match callee.proto.try_atomic_swap(a, current_r) {
                Some(pre_swap) => {
                    self.nodes
                        .get_mut(from)
                        .expect("checked above")
                        .proto
                        .adopt_value(pre_swap);
                    counters.record(Event::SwapApplied);
                }
                None if atomic => self.replay_exchange(from, counters, dropped),
                None => counters.record(Event::SwapUseless),
            }
            return Vec::new();
        }

        match self.with_node(to, |engine, node| {
            let mut out = Vec::new();
            let mut ctx = EngineCtx {
                rng: &mut engine.rng,
                out: &mut out,
                counters,
            };
            node.proto.on_message(node.sampler.view(), msg, &mut ctx);
            out
        }) {
            Some(out) => out,
            None => {
                *dropped += 1;
                Vec::new()
            }
        }
    }
}

impl Engine {
    /// Per-node view snapshots, sorted by node id: which neighbors each
    /// live node currently sees. Used by layers built *on top* of slicing
    /// (e.g. the slice-connected overlays of `dslice-overlay`) that consume
    /// the gossip stream as their candidate source.
    pub fn view_snapshot(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut snapshot: Vec<(NodeId, Vec<NodeId>)> = self
            .nodes
            .iter()
            .map(|(_, id, n)| (id, n.sampler.view().ids().collect()))
            .collect();
        snapshot.sort_unstable_by_key(|&(id, _)| id);
        snapshot
    }

    /// Debug helper: per-node view id lists, sorted by owner id (used by
    /// diagnostics examples and cross-crate tests; deterministic order).
    #[doc(hidden)]
    pub fn debug_views(&self) -> Vec<(u64, Vec<u64>)> {
        let mut views: Vec<(u64, Vec<u64>)> = self
            .nodes
            .iter()
            .map(|(_, id, n)| {
                let mut ids: Vec<u64> = n.sampler.view().ids().map(|i| i.as_u64()).collect();
                ids.sort_unstable();
                (id.as_u64(), ids)
            })
            .collect();
        views.sort_unstable_by_key(|&(id, _)| id);
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{ChurnSchedule, CorrelatedChurn, UncorrelatedChurn};
    use crate::concurrency::Concurrency;
    use crate::distributions::AttributeDistribution;

    fn small_cfg(n: usize, slices: usize, seed: u64) -> SimConfig {
        SimConfig {
            n,
            view_size: 8,
            partition: Partition::equal(slices).unwrap(),
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn construction_populates_and_bootstraps() {
        let engine = Engine::new(small_cfg(64, 4, 1), ProtocolKind::ModJk).unwrap();
        assert_eq!(engine.population(), 64);
        assert_eq!(engine.cycle(), 0);
        // Every node has a non-empty, invariant-respecting view.
        for (_, id, node) in engine.nodes.iter() {
            assert!(
                !node.sampler.view().is_empty(),
                "node {id} has no neighbors"
            );
            node.sampler.view().check_invariants(Some(id)).unwrap();
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small_cfg(0, 4, 1);
        cfg.n = 0;
        assert!(Engine::new(cfg, ProtocolKind::Jk).is_err());
    }

    #[test]
    fn mod_jk_reduces_disorder() {
        let mut engine = Engine::new(small_cfg(256, 8, 2), ProtocolKind::ModJk).unwrap();
        let before = engine.sdm();
        let record = engine.run(30);
        let after = engine.sdm();
        assert!(after < before / 2.0, "SDM {before} -> {after}");
        assert_eq!(record.cycles.len(), 30);
        assert_eq!(record.cycles.last().unwrap().cycle, 30);
    }

    #[test]
    fn gdm_reaches_zero_but_sdm_usually_does_not() {
        // Fig. 4(a): the ordering algorithm totally orders the random values
        // (GDM → 0) yet slice assignments stay off (SDM lower-bounded).
        let mut engine = Engine::new(small_cfg(128, 16, 3), ProtocolKind::ModJk).unwrap();
        engine.run(120);
        assert_eq!(engine.gdm(), 0.0, "random values must end totally ordered");
        // With 128 random values over 16 slices a perfect assignment has
        // probability ≈ 0; assert the plateau rather than exact inequality
        // on one seed.
        assert!(engine.sdm() >= 0.0);
    }

    #[test]
    fn ranking_converges_and_keeps_improving() {
        let mut engine = Engine::new(small_cfg(256, 4, 4), ProtocolKind::Ranking).unwrap();
        let record = engine.run(160);
        let early: f64 = record.cycles[9].sdm;
        let late: f64 = record.cycles[159].sdm;
        assert!(
            late < early / 3.0,
            "ranking SDM should keep dropping: {early} -> {late}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e = Engine::new(small_cfg(64, 4, seed), ProtocolKind::ModJk).unwrap();
            e.run(10)
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same record");
        assert_ne!(a, c, "different seed, different record");
    }

    #[test]
    fn sharded_run_is_byte_identical_to_sequential() {
        let run = |shards| {
            let mut cfg = small_cfg(128, 4, 99);
            cfg.shards = shards;
            let mut e = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
            e.run(12)
        };
        let sequential = run(1);
        for shards in [2, 3, 4, 7] {
            assert_eq!(sequential, run(shards), "shards = {shards} diverged");
        }
    }

    #[test]
    fn metrics_cadence_skips_cycles_but_not_determinism() {
        let mut cfg = small_cfg(64, 4, 5);
        cfg.metrics_every = 4;
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
        let record = engine.run(8);
        // Cycles 4 and 8 are measured; 1–3 repeat the construction values,
        // 5–7 repeat cycle 4's.
        assert_eq!(record.cycles[4].sdm, record.cycles[3].sdm);
        assert_eq!(record.cycles[5].sdm, record.cycles[3].sdm);
        assert_ne!(record.cycles[7].sdm, record.cycles[3].sdm);
        assert_eq!(record.cycles[0].slice_changes, 0);
        // The live sdm() accessor stays exact regardless of cadence.
        assert!(engine.sdm() >= 0.0);
    }

    #[test]
    fn concurrency_produces_useless_swaps() {
        let mut cfg = small_cfg(256, 8, 5);
        cfg.concurrency = Concurrency::Full;
        let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
        let record = engine.run(15);
        let useless: u64 = record.cycles.iter().map(|c| c.events.swaps_useless).sum();
        assert!(
            useless > 0,
            "full concurrency must produce unsuccessful swaps"
        );
    }

    #[test]
    fn no_concurrency_means_no_useless_swaps() {
        let mut engine = Engine::new(small_cfg(256, 8, 6), ProtocolKind::ModJk).unwrap();
        let record = engine.run(15);
        let useless: u64 = record.cycles.iter().map(|c| c.events.swaps_useless).sum();
        assert_eq!(
            useless, 0,
            "atomic exchanges with fresh views never go stale"
        );
    }

    #[test]
    fn correlated_churn_changes_population() {
        let schedule = ChurnSchedule {
            rate: 0.05,
            period: 1,
            stop_after: Some(5),
        };
        let mut engine = Engine::new(small_cfg(100, 4, 7), ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(CorrelatedChurn::new(schedule, 1.0)));
        let record = engine.run(8);
        let total_left: usize = record.cycles.iter().map(|c| c.left).sum();
        let total_joined: usize = record.cycles.iter().map(|c| c.joined).sum();
        assert_eq!(total_left, 25, "5 cycles x 5 nodes");
        assert_eq!(total_joined, 25);
        assert_eq!(engine.population(), 100, "same-rate churn keeps n stable");
        // All views reference live nodes only.
        for (_, id, node) in engine.nodes.iter() {
            for e in node.sampler.view().iter() {
                assert!(engine.nodes.contains(e.id) || id == e.id);
            }
        }
    }

    #[test]
    fn uncorrelated_churn_keeps_engine_running() {
        let schedule = ChurnSchedule {
            rate: 0.02,
            period: 2,
            stop_after: None,
        };
        let mut engine = Engine::new(small_cfg(100, 4, 8), ProtocolKind::ModJk)
            .unwrap()
            .with_churn(Box::new(UncorrelatedChurn::new(
                schedule,
                AttributeDistribution::default(),
            )));
        let record = engine.run(20);
        assert_eq!(record.cycles.len(), 20);
        assert!(engine.population() > 0);
    }

    #[test]
    fn uniform_oracle_refills_views_each_cycle() {
        let mut cfg = small_cfg(64, 4, 9);
        cfg.sampler = SamplerKind::UniformOracle;
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
        engine.step();
        for (_, id, node) in engine.nodes.iter() {
            let view = node.sampler.view();
            assert_eq!(view.len(), 8, "view refilled to capacity");
            view.check_invariants(Some(id)).unwrap();
        }
    }

    #[test]
    fn tiny_population_does_not_panic() {
        let mut engine = Engine::new(small_cfg(2, 2, 10), ProtocolKind::ModJk).unwrap();
        engine.run(5);
        let mut engine = Engine::new(small_cfg(1, 2, 11), ProtocolKind::Ranking).unwrap();
        engine.run(5);
        assert_eq!(engine.population(), 1);
    }

    #[test]
    fn run_record_metadata() {
        let mut engine = Engine::new(small_cfg(32, 4, 12), ProtocolKind::Jk).unwrap();
        let record = engine.run(3);
        assert_eq!(record.label, "jk");
        assert_eq!(record.seed, 12);
        assert_eq!(record.initial_n, 32);
        assert_eq!(record.slices, 4);
        assert_eq!(record.view_size, 8);
    }

    #[test]
    fn accuracy_and_histogram_reflect_convergence() {
        let mut engine = Engine::new(small_cfg(200, 4, 21), ProtocolKind::Ranking).unwrap();
        let before = engine.accuracy();
        engine.run(80);
        let after = engine.accuracy();
        assert!(after > before, "accuracy must improve: {before} -> {after}");
        assert!(after > 0.7, "converged accuracy {after} too low");
        let hist = engine.slice_histogram();
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.iter().sum::<usize>(), 200);
        // Equal slices: believed populations near 50 each once converged.
        for (idx, &c) in hist.iter().enumerate() {
            assert!(
                (25..=75).contains(&c),
                "slice {idx} believed population {c} far from 50"
            );
        }
    }

    #[test]
    fn latency_delays_but_does_not_lose_messages() {
        use crate::latency::LatencyModel;
        let mut cfg = small_cfg(128, 4, 30);
        cfg.latency = LatencyModel::Fixed { cycles: 2 };
        let mut engine = Engine::new(cfg, ProtocolKind::Ranking).unwrap();
        let record = engine.run(40);
        // Messages sent in the last cycles are still in flight; everything
        // else was delivered — none were dropped (loss_rate = 0).
        let dropped: u64 = record.cycles.iter().map(|c| c.dropped_messages).sum();
        assert_eq!(dropped, 0);
        assert!(
            !engine.in_flight.is_empty(),
            "fixed 2-cycle delay keeps a backlog"
        );
        // Samples still flow: the protocol converges, just later.
        assert!(engine.sdm() < record.cycles[0].sdm / 2.0);
    }

    #[test]
    fn latency_slows_ordering_convergence() {
        use crate::latency::LatencyModel;
        let sdm_at = |latency: LatencyModel, cycle: usize| {
            let mut cfg = small_cfg(256, 8, 31);
            cfg.latency = latency;
            let record = Engine::new(cfg, ProtocolKind::ModJk).unwrap().run(cycle);
            record.cycles.last().unwrap().sdm
        };
        let fast = sdm_at(LatencyModel::Zero, 12);
        let slow = sdm_at(LatencyModel::Uniform { min: 1, max: 4 }, 12);
        assert!(
            slow > fast,
            "multi-cycle latency must slow the ordering family: {fast} vs {slow}"
        );
    }

    #[test]
    fn delayed_swap_proposals_surface_as_useless_swaps() {
        use crate::latency::LatencyModel;
        let mut cfg = small_cfg(256, 8, 32);
        cfg.latency = LatencyModel::Fixed { cycles: 3 };
        let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
        let record = engine.run(20);
        let useless: u64 = record.cycles.iter().map(|c| c.events.swaps_useless).sum();
        assert!(
            useless > 0,
            "3-cycle-old proposals must frequently arrive stale"
        );
    }

    #[test]
    fn latency_is_deterministic_given_seed() {
        use crate::latency::LatencyModel;
        let run = |seed| {
            let mut cfg = small_cfg(64, 4, seed);
            cfg.latency = LatencyModel::Geometric { p: 0.5 };
            Engine::new(cfg, ProtocolKind::Ranking).unwrap().run(15)
        };
        assert_eq!(run(33), run(33));
    }

    #[test]
    fn slice_changes_decay_as_the_run_converges() {
        // §3.2 stability: early cycles reshuffle believed slices heavily;
        // a converged static run settles to near-zero changes per cycle.
        let mut engine = Engine::new(small_cfg(256, 4, 40), ProtocolKind::Ranking).unwrap();
        let record = engine.run(120);
        let early: usize = record.cycles[1..6].iter().map(|c| c.slice_changes).sum();
        let late: usize = record.cycles[115..].iter().map(|c| c.slice_changes).sum();
        assert!(
            late * 5 < early,
            "slice flapping must decay: early {early} vs late {late}"
        );
        // The very first cycle has no previous belief to differ from.
        assert_eq!(record.cycles[0].slice_changes, 0);
    }

    #[test]
    fn repartition_does_not_fake_a_stability_spike() {
        let mut engine = Engine::new(small_cfg(128, 4, 41), ProtocolKind::Ranking).unwrap();
        engine.run(50);
        engine.set_partition(Partition::equal(2).unwrap());
        let stats = engine.step();
        assert_eq!(
            stats.slice_changes, 0,
            "first post-repartition cycle must not count wholesale changes"
        );
    }

    #[test]
    fn snapshot_estimates_are_probabilities() {
        let mut engine = Engine::new(small_cfg(64, 4, 13), ProtocolKind::Ranking).unwrap();
        engine.run(10);
        for (_, _, est) in engine.snapshot() {
            assert!((0.0..=1.0).contains(&est), "estimate {est} out of range");
        }
    }

    #[test]
    fn snapshot_and_views_are_id_sorted() {
        let schedule = ChurnSchedule {
            rate: 0.1,
            period: 1,
            stop_after: None,
        };
        let mut engine = Engine::new(small_cfg(64, 4, 50), ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(UncorrelatedChurn::new(
                schedule,
                AttributeDistribution::default(),
            )));
        engine.run(10); // slot recycling has shuffled the internal order
        let snapshot = engine.snapshot();
        assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
        let views = engine.debug_views();
        assert!(views.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(views.len(), engine.population());
    }

    #[test]
    fn corrupt_nodes_converts_the_requested_fraction() {
        let mut engine = Engine::new(small_cfg(200, 4, 60), ProtocolKind::Ranking).unwrap();
        let corrupted = engine.corrupt_nodes(0.1, 5.0);
        assert_eq!(corrupted, 20);
        assert_eq!(engine.liar_count(), 20);
        assert_eq!(engine.population(), 200, "corruption is not churn");
        // Corrupting again only draws from the still-honest pool.
        let more = engine.corrupt_nodes(0.5, 5.0);
        assert_eq!(more, 90, "half of the remaining 180");
        assert_eq!(engine.liar_count(), 110);
        // Zero fraction is a no-op.
        assert_eq!(engine.corrupt_nodes(0.0, 5.0), 0);
    }

    #[test]
    fn corrupt_boundary_nodes_targets_the_slice_edges() {
        let mut engine = Engine::new(small_cfg(200, 4, 61), ProtocolKind::Ranking).unwrap();
        let corrupted = engine.corrupt_boundary_nodes(0.1, 10.0);
        assert_eq!(corrupted, 20);
        assert_eq!(engine.liar_count(), 20);
        assert_eq!(engine.population(), 200, "corruption is not churn");
        // Every chosen node's true rank must be nearer a slice boundary than
        // every honest survivor's: compute true ranks the same way.
        let mut by_attr: Vec<(u64, f64)> = engine
            .snapshot()
            .iter()
            .map(|&(id, attr, _)| (id.as_u64(), attr.value()))
            .collect();
        by_attr.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let n = by_attr.len() as f64;
        let part = engine.partition().clone();
        let dist = |pos: usize| part.boundary_distance((pos + 1) as f64 / n);
        let worst_liar = by_attr
            .iter()
            .enumerate()
            .filter(|(_, (id, _))| engine.is_liar(NodeId::new(*id)))
            .map(|(pos, _)| dist(pos))
            .fold(0.0f64, f64::max);
        let best_honest = by_attr
            .iter()
            .enumerate()
            .filter(|(_, (id, _))| !engine.is_liar(NodeId::new(*id)))
            .map(|(pos, _)| dist(pos))
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst_liar <= best_honest,
            "boundary targeting must pick the edge-nearest ranks \
             (worst liar {worst_liar} vs best honest {best_honest})"
        );
        // Deterministic and RNG-free: a fresh engine picks the same set.
        let mut again = Engine::new(small_cfg(200, 4, 61), ProtocolKind::Ranking).unwrap();
        again.corrupt_boundary_nodes(0.1, 10.0);
        let liars_a: Vec<u64> = engine
            .snapshot()
            .iter()
            .map(|&(id, _, _)| id.as_u64())
            .filter(|&id| engine.is_liar(NodeId::new(id)))
            .collect();
        let liars_b: Vec<u64> = again
            .snapshot()
            .iter()
            .map(|&(id, _, _)| id.as_u64())
            .filter(|&id| again.is_liar(NodeId::new(id)))
            .collect();
        assert_eq!(liars_a, liars_b);
        // Zero fraction is a no-op.
        assert_eq!(engine.corrupt_boundary_nodes(0.0, 10.0), 0);
    }

    #[test]
    fn corruption_is_deterministic_across_shard_counts() {
        let run = |shards| {
            let mut cfg = small_cfg(128, 4, 61);
            cfg.shards = shards;
            let mut e = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
            e.run(5);
            e.corrupt_nodes(0.2, 10.0);
            let record = e.run(10);
            (record, e.honest_accuracy(), e.accuracy())
        };
        let sequential = run(1);
        for shards in [2, 4] {
            assert_eq!(sequential, run(shards), "shards = {shards} diverged");
        }
    }

    #[test]
    fn network_partition_severs_cross_band_traffic_until_healed() {
        let mut engine = Engine::new(small_cfg(128, 4, 70), ProtocolKind::Ranking).unwrap();
        engine.run(5);
        engine.set_network_partition(2, None).unwrap();
        let partitioned = engine.run(10);
        let severed: u64 = partitioned.cycles.iter().map(|c| c.dropped_messages).sum();
        assert!(severed > 0, "cross-band updates must be dropped");
        engine.heal_network_partition();
        assert!(engine.network_fault().is_quiet());
        let healed = engine.run(10);
        let after: u64 = healed.cycles.iter().map(|c| c.dropped_messages).sum();
        assert_eq!(after, 0, "a healed network loses nothing");
    }

    #[test]
    fn scheduled_heal_fires_at_the_given_cycle() {
        let mut engine = Engine::new(small_cfg(64, 4, 71), ProtocolKind::Ranking).unwrap();
        // Heal at cycle 4: cycles 1–3 partitioned, 4 onward connected.
        engine.set_network_partition(2, Some(4)).unwrap();
        for _ in 0..3 {
            engine.step();
            assert!(engine.network_fault().partition().is_some());
        }
        let healed_cycle = engine.step();
        assert!(engine.network_fault().partition().is_none());
        assert_eq!(healed_cycle.dropped_messages, 0);
    }

    #[test]
    fn drop_rate_loses_a_matching_share_of_messages() {
        let run = |rate: f64| {
            let mut e = Engine::new(small_cfg(128, 4, 72), ProtocolKind::Ranking).unwrap();
            e.set_drop_rate(rate).unwrap();
            let record = e.run(10);
            record
                .cycles
                .iter()
                .map(|c| c.dropped_messages)
                .sum::<u64>()
        };
        assert_eq!(run(0.0), 0);
        let half = run(0.5);
        let tenth = run(0.1);
        assert!(half > tenth, "drop counts must scale: {tenth} vs {half}");
        assert!(tenth > 0);
    }

    #[test]
    fn region_latency_override_holds_messages_in_flight() {
        let mut engine = Engine::new(small_cfg(128, 4, 73), ProtocolKind::Ranking).unwrap();
        engine.set_network_partition(2, None).unwrap();
        engine
            .set_region_latency(1, LatencyModel::Fixed { cycles: 3 })
            .unwrap();
        engine.run(5);
        assert!(
            !engine.in_flight.is_empty(),
            "band-1 deliveries must be delayed under the override"
        );
        // Region overrides need an installed partition.
        engine.heal_network_partition();
        assert!(engine
            .set_region_latency(1, LatencyModel::Fixed { cycles: 3 })
            .is_err());
    }

    #[test]
    fn fault_injection_is_deterministic_across_shard_counts() {
        let run = |shards| {
            let mut cfg = small_cfg(128, 4, 74);
            cfg.shards = shards;
            let mut e = Engine::new(cfg, ProtocolKind::decay(0.98)).unwrap();
            e.run(5);
            e.set_network_partition(2, Some(12)).unwrap();
            e.set_drop_rate(0.05).unwrap();
            e.set_region_latency(1, LatencyModel::Uniform { min: 1, max: 2 })
                .unwrap();
            let record = e.run(15);
            (record, e.accuracy())
        };
        let sequential = run(1);
        for shards in [2, 4] {
            assert_eq!(sequential, run(shards), "shards = {shards} diverged");
        }
    }

    #[test]
    fn partition_starves_cross_band_evidence_under_correlated_churn() {
        // The acceptance-(b) mechanism in miniature: during an attribute
        // partition, correlated churn reshapes the other band invisibly, so
        // estimates go stale; after the heal, the decay estimator re-adapts.
        let schedule = ChurnSchedule {
            rate: 0.05,
            period: 1,
            stop_after: Some(20),
        };
        let mut engine = Engine::new(small_cfg(256, 4, 75), ProtocolKind::decay(0.98))
            .unwrap()
            .with_churn(Box::new(CorrelatedChurn::new(schedule, 1.0)));
        engine.run(30);
        engine.set_network_partition(2, None).unwrap();
        engine.run(25);
        let partitioned = engine.accuracy();
        engine.heal_network_partition();
        engine.run(40);
        let healed = engine.accuracy();
        assert!(
            healed > partitioned,
            "post-heal accuracy must recover: {partitioned} -> {healed}"
        );
        assert!(healed >= 0.85, "decay must re-converge, got {healed}");
    }

    #[test]
    fn corrupt_adaptive_converts_the_requested_fraction() {
        let mut engine = Engine::new(small_cfg(200, 4, 64), ProtocolKind::Ranking).unwrap();
        let spec = AttackerSpec::Colluder { target: 0.95 };
        assert_eq!(engine.corrupt_adaptive(0.1, spec), 20);
        assert_eq!(engine.liar_count(), 20);
        assert_eq!(engine.population(), 200, "corruption is not churn");
        // A second wave only draws from the still-honest pool, and the
        // static and adaptive tiers share one liar set.
        assert_eq!(engine.corrupt_nodes(0.5, 5.0), 90);
        assert_eq!(engine.liar_count(), 110);
        assert_eq!(engine.corrupt_adaptive(0.0, spec), 0);
    }

    #[test]
    #[should_panic(expected = "invalid attacker spec")]
    fn corrupt_adaptive_rejects_invalid_specs() {
        let mut engine = Engine::new(small_cfg(16, 4, 65), ProtocolKind::Ranking).unwrap();
        engine.corrupt_adaptive(0.1, AttackerSpec::Colluder { target: 2.0 });
    }

    #[test]
    fn adaptive_corruption_is_deterministic_across_shard_counts() {
        let run = |shards| {
            let mut cfg = small_cfg(128, 4, 66);
            cfg.shards = shards;
            let mut e = Engine::new(cfg, ProtocolKind::RobustRanking { window: 16 }).unwrap();
            e.run(5);
            e.corrupt_adaptive(
                0.2,
                AttackerSpec::Drifter {
                    inflation: 4.0,
                    step: 0.25,
                    epoch: 4,
                },
            );
            let record = e.run(10);
            (record, e.honest_accuracy(), e.accuracy())
        };
        let sequential = run(1);
        for shards in [2, 4] {
            assert_eq!(sequential, run(shards), "shards = {shards} diverged");
        }
    }

    #[test]
    fn trimming_blunts_colluders_that_static_fences_admit() {
        // The acceptance experiment in miniature: colluders aim their poison
        // just inside the Tukey fences, so the fence-only filter absorbs it
        // while the trimmed filter clips it as an order-statistic outlier.
        let honest = |kind: ProtocolKind, seed| {
            let mut e = Engine::new(small_cfg(256, 4, seed), kind).unwrap();
            e.run(60);
            e.corrupt_adaptive(0.2, AttackerSpec::Colluder { target: 0.95 });
            e.run(60);
            e.honest_accuracy()
        };
        let fenced = honest(ProtocolKind::RobustRanking { window: 32 }, 67);
        let trimmed = honest(ProtocolKind::trimmed(32, 0.1), 67);
        assert!(
            trimmed > fenced,
            "trimmed admission must out-defend the static fence \
             against fence-aware collusion: {trimmed} vs {fenced}"
        );
    }

    #[test]
    fn lying_nodes_hurt_overall_more_than_honest_accuracy() {
        // A converged honest run, then 20% of nodes start claiming 10× their
        // rank: overall accuracy must fall below honest-only accuracy (the
        // liars are deliberately misplaced), and with no liars the two
        // accessors agree exactly.
        let mut engine = Engine::new(small_cfg(256, 4, 62), ProtocolKind::Ranking).unwrap();
        engine.run(80);
        assert_eq!(engine.accuracy(), engine.honest_accuracy());
        engine.corrupt_nodes(0.2, 10.0);
        engine.run(20);
        assert!(
            engine.accuracy() < engine.honest_accuracy(),
            "liars must drag overall accuracy below honest-only accuracy"
        );
    }

    #[test]
    fn departed_liars_are_forgotten() {
        let schedule = ChurnSchedule {
            rate: 0.2,
            period: 1,
            stop_after: None,
        };
        let mut engine = Engine::new(small_cfg(100, 4, 63), ProtocolKind::Ranking)
            .unwrap()
            .with_churn(Box::new(UncorrelatedChurn::new(
                schedule,
                AttributeDistribution::default(),
            )));
        engine.corrupt_nodes(0.5, 4.0);
        assert_eq!(engine.liar_count(), 50);
        engine.run(30);
        // Heavy uncorrelated churn replaces liars with honest joiners; every
        // tracked liar must still be a live node.
        assert!(engine.liar_count() < 50);
        let live: Vec<NodeId> = engine.nodes.ids().collect();
        for id in &live {
            let _ = engine.is_liar(*id);
        }
        assert!(
            engine.liars.iter().all(|id| engine.nodes.contains(*id)),
            "liar set must only track live nodes"
        );
    }
}
