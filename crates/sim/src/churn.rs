//! Churn models (§3.3, §5.3.3).
//!
//! Churn — "the continuous arrival and departure of nodes [—] is an
//! intrinsic characteristic of peer to peer systems". The paper's key churn
//! scenario *correlates* departures with the attribute value:
//!
//! > The leaving nodes are the nodes with the lowest attribute values while
//! > the entering nodes have higher attribute values than all nodes already
//! > in the system. The parameter choices are motivated by the need of
//! > simulating a system in which the attribute value corresponds to the
//! > session duration of nodes.
//!
//! Three models are provided:
//!
//! * [`NoChurn`] — the static case (Figs. 4, 6(a), 6(b)).
//! * [`UncorrelatedChurn`] — uniform-random leavers, joiners drawn from the
//!   base attribute distribution (the "easier case" of §3.3).
//! * [`CorrelatedChurn`] — the paper's session-duration scenario: burst mode
//!   (0.1% per cycle for the first 200 cycles, Fig. 6(c)) and regular mode
//!   (0.1% every 10 cycles, Fig. 6(d)) are both configurations of it.

use crate::distributions::AttributeDistribution;
use dslice_core::{Attribute, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What the churn model decided for one cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChurnPlan {
    /// Nodes that leave (crash or depart — the model does not distinguish,
    /// per §3.1).
    pub leavers: Vec<NodeId>,
    /// Attribute values of the joining nodes.
    pub joiners: Vec<Attribute>,
}

impl ChurnPlan {
    /// The empty plan: nothing happens.
    pub fn quiet() -> Self {
        ChurnPlan::default()
    }

    /// Whether this plan changes the population.
    pub fn is_quiet(&self) -> bool {
        self.leavers.is_empty() && self.joiners.is_empty()
    }
}

/// A churn model: decides, each cycle, who leaves and who joins.
pub trait ChurnModel: Send {
    /// Plans the churn for `cycle` given the live population
    /// (`(id, attribute)` pairs, unordered).
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan;

    /// A short label for experiment output.
    fn label(&self) -> &'static str;

    /// Whether [`plan`](ChurnModel::plan) ever reads the population
    /// snapshot. Models that never do (e.g. [`NoChurn`]) return `false`,
    /// letting large-population runtimes skip building the O(n) snapshot
    /// every cycle.
    fn needs_population(&self) -> bool {
        true
    }
}

/// The static system: no churn at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoChurn;

impl ChurnModel for NoChurn {
    fn plan(
        &mut self,
        _cycle: usize,
        _population: &[(NodeId, Attribute)],
        _rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        ChurnPlan::quiet()
    }

    fn label(&self) -> &'static str {
        "none"
    }

    fn needs_population(&self) -> bool {
        false
    }
}

/// Shared schedule parameters for the dynamic models.
///
/// `rate` is the fraction of the current population that leaves *and* joins
/// at each churn event; events fire every `period` cycles, and stop after
/// `stop_after` cycles if set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Fraction of the population replaced per event (e.g. `0.001` = 0.1%).
    pub rate: f64,
    /// Fire an event every `period` cycles (1 = every cycle).
    pub period: usize,
    /// Stop firing after this cycle (exclusive), if set.
    pub stop_after: Option<usize>,
}

impl ChurnSchedule {
    /// Fig. 6(c): 0.1% leave and 0.1% join *each cycle* during the first
    /// 200 cycles.
    pub fn burst() -> Self {
        ChurnSchedule {
            rate: 0.001,
            period: 1,
            stop_after: Some(200),
        }
    }

    /// Fig. 6(d): 0.1% leave and join *every 10 cycles*, indefinitely.
    pub fn regular() -> Self {
        ChurnSchedule {
            rate: 0.001,
            period: 10,
            stop_after: None,
        }
    }

    /// Whether an event fires at `cycle` (cycles are 1-based).
    pub fn fires_at(&self, cycle: usize) -> bool {
        if cycle == 0 || !cycle.is_multiple_of(self.period.max(1)) {
            return false;
        }
        match self.stop_after {
            Some(stop) => cycle <= stop,
            None => true,
        }
    }

    /// Number of nodes affected at an event given the population size
    /// (at least 1 whenever the rate is positive and the population
    /// non-empty, so small test populations still churn).
    pub fn count(&self, n: usize) -> usize {
        if self.rate <= 0.0 || n == 0 {
            return 0;
        }
        ((n as f64 * self.rate).round() as usize).max(1)
    }
}

/// Uncorrelated churn: uniformly random leavers, joiners from the base
/// attribute distribution (the population's shape is stationary).
#[derive(Clone, Debug)]
pub struct UncorrelatedChurn {
    schedule: ChurnSchedule,
    distribution: AttributeDistribution,
}

impl UncorrelatedChurn {
    /// Creates the model from a schedule and the joiner distribution.
    pub fn new(schedule: ChurnSchedule, distribution: AttributeDistribution) -> Self {
        UncorrelatedChurn {
            schedule,
            distribution,
        }
    }
}

impl ChurnModel for UncorrelatedChurn {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        if !self.schedule.fires_at(cycle) {
            return ChurnPlan::quiet();
        }
        let count = self.schedule.count(population.len());
        let mut rng = rng; // &mut dyn RngCore implements Rng via RngCore
        let leavers: Vec<NodeId> = population
            .choose_multiple(&mut rng, count)
            .map(|(id, _)| *id)
            .collect();
        let joiners = (0..count)
            .map(|_| self.distribution.sample(&mut rng))
            .collect();
        ChurnPlan { leavers, joiners }
    }

    fn label(&self) -> &'static str {
        "uncorrelated"
    }
}

/// The paper's attribute-correlated churn (§5.3.3): the `count` nodes with
/// the **lowest** attribute values leave; joiners arrive with attribute
/// values **above every node currently in the system**, as when the
/// attribute is the node's session duration.
#[derive(Clone, Debug)]
pub struct CorrelatedChurn {
    schedule: ChurnSchedule,
    /// Highest attribute value ever seen; joiners arrive strictly above it.
    high_water: f64,
    /// Spread of joiner values above the high-water mark.
    step: f64,
}

impl CorrelatedChurn {
    /// Creates the model. `step` controls how far above the current maximum
    /// the joiners land (uniformly in `(max, max + step]`).
    pub fn new(schedule: ChurnSchedule, step: f64) -> Self {
        CorrelatedChurn {
            schedule,
            high_water: f64::NEG_INFINITY,
            step: step.max(f64::MIN_POSITIVE),
        }
    }

    /// The burst scenario of Fig. 6(c).
    pub fn burst() -> Self {
        Self::new(ChurnSchedule::burst(), 1.0)
    }

    /// The regular low-churn scenario of Fig. 6(d).
    pub fn regular() -> Self {
        Self::new(ChurnSchedule::regular(), 1.0)
    }
}

impl ChurnModel for CorrelatedChurn {
    fn plan(
        &mut self,
        cycle: usize,
        population: &[(NodeId, Attribute)],
        rng: &mut dyn rand::RngCore,
    ) -> ChurnPlan {
        if !self.schedule.fires_at(cycle) {
            return ChurnPlan::quiet();
        }
        let count = self.schedule.count(population.len());
        if count == 0 {
            return ChurnPlan::quiet();
        }

        // Leavers: the `count` lowest attribute values (ties by id).
        let mut by_attr: Vec<&(NodeId, Attribute)> = population.iter().collect();
        by_attr.sort_unstable_by(|(ia, aa), (ib, ab)| aa.cmp(ab).then_with(|| ia.cmp(ib)));
        let leavers: Vec<NodeId> = by_attr.iter().take(count).map(|(id, _)| *id).collect();

        // Joiners: strictly above the current maximum (and above anything
        // we previously issued, so the invariant holds even if the previous
        // maximum just left).
        let current_max = by_attr
            .last()
            .map(|(_, a)| a.value())
            .unwrap_or(0.0)
            .max(self.high_water);
        self.high_water = self.high_water.max(current_max);
        let mut joiners = Vec::with_capacity(count);
        for _ in 0..count {
            // Each joiner lands strictly above everything seen so far —
            // including earlier joiners of the same batch — so the
            // "session duration" invariant holds across and within batches.
            let v = self.high_water + rng.gen_range(f64::EPSILON..=self.step);
            self.high_water = v;
            joiners.push(Attribute::new(v).expect("finite"));
        }
        ChurnPlan { leavers, joiners }
    }

    fn label(&self) -> &'static str {
        "correlated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> Vec<(NodeId, Attribute)> {
        (0..n)
            .map(|i| (NodeId::new(i as u64), Attribute::new(i as f64).unwrap()))
            .collect()
    }

    #[test]
    fn no_churn_is_quiet() {
        let mut m = NoChurn;
        let mut rng = StdRng::seed_from_u64(1);
        let plan = m.plan(5, &population(100), &mut rng);
        assert!(plan.is_quiet());
        assert_eq!(m.label(), "none");
    }

    #[test]
    fn schedule_burst_fires_first_200_cycles_only() {
        let s = ChurnSchedule::burst();
        assert!(!s.fires_at(0));
        assert!(s.fires_at(1));
        assert!(s.fires_at(200));
        assert!(!s.fires_at(201));
        assert!(!s.fires_at(1000));
    }

    #[test]
    fn schedule_regular_fires_every_10_forever() {
        let s = ChurnSchedule::regular();
        assert!(!s.fires_at(1));
        assert!(!s.fires_at(9));
        assert!(s.fires_at(10));
        assert!(!s.fires_at(11));
        assert!(s.fires_at(20));
        assert!(s.fires_at(10_000));
    }

    #[test]
    fn count_is_at_least_one_when_firing() {
        let s = ChurnSchedule::burst(); // 0.1%
        assert_eq!(s.count(10_000), 10);
        assert_eq!(s.count(100), 1, "rounds to ≥ 1");
        assert_eq!(s.count(0), 0);
        let quiet = ChurnSchedule {
            rate: 0.0,
            period: 1,
            stop_after: None,
        };
        assert_eq!(quiet.count(10_000), 0);
    }

    #[test]
    fn uncorrelated_replaces_same_count() {
        let mut m = UncorrelatedChurn::new(
            ChurnSchedule {
                rate: 0.05,
                period: 1,
                stop_after: None,
            },
            AttributeDistribution::default(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        let pop = population(200);
        let plan = m.plan(1, &pop, &mut rng);
        assert_eq!(plan.leavers.len(), 10);
        assert_eq!(plan.joiners.len(), 10);
        // Leavers are actual population members, all distinct.
        let mut ids: Vec<u64> = plan.leavers.iter().map(|id| id.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert!(ids.iter().all(|&id| id < 200));
        assert_eq!(m.label(), "uncorrelated");
    }

    #[test]
    fn correlated_removes_lowest_and_joins_above_max() {
        let mut m = CorrelatedChurn::new(
            ChurnSchedule {
                rate: 0.02,
                period: 1,
                stop_after: None,
            },
            1.0,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let pop = population(100); // attributes 0..99
        let plan = m.plan(1, &pop, &mut rng);
        assert_eq!(plan.leavers.len(), 2);
        // The two lowest attributes are nodes 0 and 1.
        let mut ids: Vec<u64> = plan.leavers.iter().map(|id| id.as_u64()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        for a in &plan.joiners {
            assert!(a.value() > 99.0, "joiner {a} must exceed current max");
        }
        assert_eq!(m.label(), "correlated");
    }

    #[test]
    fn correlated_high_water_mark_is_monotonic() {
        let mut m = CorrelatedChurn::new(
            ChurnSchedule {
                rate: 0.02,
                period: 1,
                stop_after: None,
            },
            1.0,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let pop = population(100);
        let mut last_max = 99.0;
        for cycle in 1..=20 {
            let plan = m.plan(cycle, &pop, &mut rng);
            for a in &plan.joiners {
                assert!(a.value() > last_max);
                last_max = last_max.max(a.value());
            }
        }
    }

    #[test]
    fn correlated_quiet_outside_schedule() {
        let mut m = CorrelatedChurn::burst();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(m.plan(201, &population(50), &mut rng).is_quiet());
        assert!(!m.plan(200, &population(50), &mut rng).is_quiet());
    }

    #[test]
    fn empty_population_yields_quiet_plans() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = CorrelatedChurn::burst();
        assert!(c.plan(1, &[], &mut rng).is_quiet());
        let mut u =
            UncorrelatedChurn::new(ChurnSchedule::burst(), AttributeDistribution::default());
        assert!(u.plan(1, &[], &mut rng).is_quiet());
    }
}
