//! Multi-seed aggregation and parameter sweeps.
//!
//! A single seeded run is reproducible but still one draw from the
//! protocol's randomness; the paper's curves are likewise single
//! trajectories. [`run_seeds`] repeats a configuration across seeds and
//! aggregates the per-cycle statistics into mean ± standard deviation, so
//! experiment tables can carry confidence bands; [`Sweep`] iterates that
//! over a list of labelled configurations (view sizes, slice counts,
//! protocols — whatever varies).

use crate::churn::ChurnModel;
use crate::config::{ProtocolKind, SimConfig};
use crate::engine::Engine;
use crate::stats::RunRecord;
use dslice_core::Result;
use serde::{Deserialize, Serialize};

/// Per-cycle aggregate over several seeds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateCycle {
    /// 1-based cycle number.
    pub cycle: usize,
    /// Mean SDM across seeds.
    pub sdm_mean: f64,
    /// Standard deviation of the SDM across seeds.
    pub sdm_std: f64,
    /// Mean GDM across seeds.
    pub gdm_mean: f64,
    /// Mean unsuccessful-swap percentage across seeds.
    pub unsuccessful_pct_mean: f64,
}

/// The aggregate of one configuration over several seeds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateRecord {
    /// Label of the aggregated runs (protocol label by default).
    pub label: String,
    /// The seeds that contributed.
    pub seeds: Vec<u64>,
    /// Per-cycle aggregates, in cycle order.
    pub cycles: Vec<AggregateCycle>,
}

impl AggregateRecord {
    /// Aggregates per-cycle statistics of several runs (which must share a
    /// cycle count).
    ///
    /// # Panics
    /// Panics if `records` is empty or the cycle counts differ.
    pub fn from_records(records: &[RunRecord]) -> Self {
        assert!(!records.is_empty(), "need at least one record");
        let cycles = records[0].cycles.len();
        assert!(
            records.iter().all(|r| r.cycles.len() == cycles),
            "all runs must cover the same number of cycles"
        );
        let k = records.len() as f64;
        let mut out = Vec::with_capacity(cycles);
        for i in 0..cycles {
            let sdms: Vec<f64> = records.iter().map(|r| r.cycles[i].sdm).collect();
            let sdm_mean = sdms.iter().sum::<f64>() / k;
            let sdm_var = sdms.iter().map(|s| (s - sdm_mean).powi(2)).sum::<f64>() / k;
            let gdm_mean = records.iter().map(|r| r.cycles[i].gdm).sum::<f64>() / k;
            let pct_mean = records
                .iter()
                .map(|r| r.cycles[i].unsuccessful_swap_pct())
                .sum::<f64>()
                / k;
            out.push(AggregateCycle {
                cycle: records[0].cycles[i].cycle,
                sdm_mean,
                sdm_std: sdm_var.sqrt(),
                gdm_mean,
                unsuccessful_pct_mean: pct_mean,
            });
        }
        AggregateRecord {
            label: records[0].label.clone(),
            seeds: records.iter().map(|r| r.seed).collect(),
            cycles: out,
        }
    }

    /// The final mean SDM.
    pub fn final_sdm_mean(&self) -> Option<f64> {
        self.cycles.last().map(|c| c.sdm_mean)
    }

    /// Writes the aggregate as CSV
    /// (`cycle,sdm_mean,sdm_std,gdm_mean,unsuccessful_pct_mean`).
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "cycle,sdm_mean,sdm_std,gdm_mean,unsuccessful_pct_mean")?;
        for c in &self.cycles {
            writeln!(
                w,
                "{},{},{},{},{:.4}",
                c.cycle, c.sdm_mean, c.sdm_std, c.gdm_mean, c.unsuccessful_pct_mean
            )?;
        }
        Ok(())
    }
}

/// Runs `base` under each seed (overriding `base.seed`) and aggregates.
///
/// `churn` builds a fresh churn model per run (models are stateful).
pub fn run_seeds<F>(
    base: &SimConfig,
    kind: ProtocolKind,
    cycles: usize,
    seeds: &[u64],
    mut churn: F,
) -> Result<AggregateRecord>
where
    F: FnMut() -> Option<Box<dyn ChurnModel>>,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut records = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let cfg = SimConfig {
            seed,
            ..base.clone()
        };
        let mut engine = Engine::new(cfg, kind)?;
        if let Some(model) = churn() {
            engine = engine.with_churn(model);
        }
        records.push(engine.run(cycles));
    }
    Ok(AggregateRecord::from_records(&records))
}

/// A labelled set of configurations to sweep.
#[derive(Debug)]
pub struct Sweep {
    /// `(label, config, protocol)` triples to run.
    pub configs: Vec<(String, SimConfig, ProtocolKind)>,
    /// Seeds each configuration is repeated under.
    pub seeds: Vec<u64>,
    /// Cycles per run.
    pub cycles: usize,
}

impl Sweep {
    /// Runs the whole sweep (no churn), returning one aggregate per config.
    pub fn run(&self) -> Result<Vec<(String, AggregateRecord)>> {
        let mut out = Vec::with_capacity(self.configs.len());
        for (label, cfg, kind) in &self.configs {
            let agg = run_seeds(cfg, *kind, self.cycles, &self.seeds, || None)?;
            out.push((label.clone(), agg));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::Partition;

    fn base(n: usize) -> SimConfig {
        SimConfig {
            n,
            view_size: 6,
            partition: Partition::equal(4).unwrap(),
            ..SimConfig::default()
        }
    }

    #[test]
    fn aggregate_of_identical_runs_has_zero_std() {
        let cfg = base(80);
        let mut e1 = Engine::new(cfg.clone(), ProtocolKind::ModJk).unwrap();
        let mut e2 = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
        let r1 = e1.run(5);
        let r2 = e2.run(5);
        let agg = AggregateRecord::from_records(&[r1, r2]);
        for c in &agg.cycles {
            assert_eq!(c.sdm_std, 0.0, "same seed, zero spread");
        }
    }

    #[test]
    fn run_seeds_aggregates_distinct_seeds() {
        let agg = run_seeds(&base(100), ProtocolKind::Ranking, 10, &[1, 2, 3], || None).unwrap();
        assert_eq!(agg.seeds, vec![1, 2, 3]);
        assert_eq!(agg.cycles.len(), 10);
        // Different seeds: almost surely nonzero spread early on.
        assert!(agg.cycles[0].sdm_std > 0.0);
        // And the mean still converges.
        assert!(agg.final_sdm_mean().unwrap() < agg.cycles[0].sdm_mean);
    }

    #[test]
    fn sweep_runs_multiple_configs() {
        let sweep = Sweep {
            configs: vec![
                ("jk".into(), base(60), ProtocolKind::Jk),
                ("mod-jk".into(), base(60), ProtocolKind::ModJk),
            ],
            seeds: vec![7, 8],
            cycles: 8,
        };
        let results = sweep.run().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "jk");
        assert_eq!(results[1].1.cycles.len(), 8);
    }

    #[test]
    fn aggregate_csv_output() {
        let agg = run_seeds(&base(60), ProtocolKind::Ranking, 3, &[1, 2], || None).unwrap();
        let mut buf = Vec::new();
        agg.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("cycle,sdm_mean,sdm_std"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_aggregate_panics() {
        AggregateRecord::from_records(&[]);
    }

    #[test]
    #[should_panic(expected = "same number of cycles")]
    fn mismatched_lengths_panic() {
        let mut e1 = Engine::new(base(50), ProtocolKind::Jk).unwrap();
        let mut e2 = Engine::new(base(50), ProtocolKind::Jk).unwrap();
        let r1 = e1.run(3);
        let r2 = e2.run(4);
        AggregateRecord::from_records(&[r1, r2]);
    }
}
