//! Attribute-value distributions.
//!
//! The paper's system model allows attribute values with "an arbitrary
//! skewed distribution" (§3.1) and motivates slicing precisely by the
//! heavy-tailed capacities measured in deployed P2P systems (§1.1, refs
//! [16, 3, 17]). The experiments therefore need several population shapes:
//!
//! * [`AttributeDistribution::Uniform`] — the neutral baseline.
//! * [`AttributeDistribution::Pareto`] — heavy-tailed capacities
//!   (bandwidth, storage), sampled by inverse transform.
//! * [`AttributeDistribution::Normal`] — bell-shaped populations such as the
//!   height example of Fig. 1, sampled by Box–Muller.
//! * [`AttributeDistribution::Exponential`] — session-time-like skews.
//!
//! Samplers are implemented from scratch on top of `rand`'s uniform source
//! so the workspace does not need `rand_distr`.

use dslice_core::{Attribute, Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over attribute values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttributeDistribution {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive); must exceed `lo`.
        hi: f64,
    },
    /// Pareto with scale `x_m > 0` and shape `alpha > 0`: heavy-tailed.
    Pareto {
        /// Scale parameter `x_m` (the minimum value).
        scale: f64,
        /// Shape parameter `alpha`; smaller means heavier tail.
        shape: f64,
    },
    /// Normal with the given mean and standard deviation (Box–Muller).
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation; must be positive.
        std_dev: f64,
    },
    /// Exponential with rate `lambda > 0`.
    Exponential {
        /// Rate parameter `lambda`.
        rate: f64,
    },
}

impl Default for AttributeDistribution {
    /// The paper's simulations draw capacities without a stated shape; a
    /// unit-uniform population is the neutral default.
    fn default() -> Self {
        AttributeDistribution::Uniform { lo: 0.0, hi: 1.0 }
    }
}

impl AttributeDistribution {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            AttributeDistribution::Uniform { lo, hi } => {
                lo.is_finite() && hi.is_finite() && lo < hi
            }
            AttributeDistribution::Pareto { scale, shape } => scale > 0.0 && shape > 0.0,
            AttributeDistribution::Normal { mean, std_dev } => mean.is_finite() && std_dev > 0.0,
            AttributeDistribution::Exponential { rate } => rate > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(Error::InvalidFractions(format!(
                "invalid distribution parameters: {self:?}"
            )))
        }
    }

    /// Draws one raw sample.
    pub fn sample_f64<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            AttributeDistribution::Uniform { lo, hi } => rng.gen_range(lo..hi),
            AttributeDistribution::Pareto { scale, shape } => {
                // Inverse transform: X = x_m / U^(1/alpha), U ∈ (0, 1].
                let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                scale / u.powf(1.0 / shape)
            }
            AttributeDistribution::Normal { mean, std_dev } => {
                // Box–Muller; one variate per call keeps the sampler
                // stateless (determinism over elegance).
                let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std_dev * z
            }
            AttributeDistribution::Exponential { rate } => {
                let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                -u.ln() / rate
            }
        }
    }

    /// Draws one attribute value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Attribute {
        Attribute::new(self.sample_f64(rng)).expect("samplers produce finite values")
    }

    /// Draws `n` attribute values.
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Attribute> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The theoretical mean, if finite (used by sanity tests).
    pub fn mean(&self) -> Option<f64> {
        match *self {
            AttributeDistribution::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            AttributeDistribution::Pareto { scale, shape } => {
                (shape > 1.0).then(|| shape * scale / (shape - 1.0))
            }
            AttributeDistribution::Normal { mean, .. } => Some(mean),
            AttributeDistribution::Exponential { rate } => Some(1.0 / rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(dist: AttributeDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample_f64(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn validation() {
        assert!(AttributeDistribution::Uniform { lo: 0.0, hi: 1.0 }
            .validate()
            .is_ok());
        assert!(AttributeDistribution::Uniform { lo: 1.0, hi: 0.0 }
            .validate()
            .is_err());
        assert!(AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 2.0
        }
        .validate()
        .is_ok());
        assert!(AttributeDistribution::Pareto {
            scale: 0.0,
            shape: 2.0
        }
        .validate()
        .is_err());
        assert!(AttributeDistribution::Normal {
            mean: 0.0,
            std_dev: 1.0
        }
        .validate()
        .is_ok());
        assert!(AttributeDistribution::Normal {
            mean: 0.0,
            std_dev: 0.0
        }
        .validate()
        .is_err());
        assert!(AttributeDistribution::Exponential { rate: 2.0 }
            .validate()
            .is_ok());
        assert!(AttributeDistribution::Exponential { rate: -1.0 }
            .validate()
            .is_err());
    }

    #[test]
    fn uniform_stays_in_range_and_centers() {
        let dist = AttributeDistribution::Uniform { lo: 10.0, hi: 20.0 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = dist.sample_f64(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
        let m = sample_mean(dist, 20_000, 2);
        assert!((m - 15.0).abs() < 0.1, "mean {m} far from 15");
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let dist = AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 3.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(dist.sample_f64(&mut rng) >= 1.0, "Pareto below scale");
        }
        // Mean = alpha/(alpha-1) * x_m = 1.5.
        let m = sample_mean(dist, 100_000, 4);
        assert!((m - 1.5).abs() < 0.05, "mean {m} far from 1.5");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With shape 1.1, the top 1% of samples should dwarf the median.
        let dist = AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 1.1,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<f64> = (0..10_000).map(|_| dist.sample_f64(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[5000];
        let p99 = xs[9900];
        assert!(p99 / median > 10.0, "p99/median = {}", p99 / median);
    }

    #[test]
    fn normal_mean_and_spread() {
        let dist = AttributeDistribution::Normal {
            mean: 170.0,
            std_dev: 10.0,
        };
        let m = sample_mean(dist, 50_000, 6);
        assert!((m - 170.0).abs() < 0.3, "mean {m} far from 170");
        // ~68% within one std dev.
        let mut rng = StdRng::seed_from_u64(7);
        let within = (0..10_000)
            .filter(|_| (dist.sample_f64(&mut rng) - 170.0).abs() <= 10.0)
            .count();
        assert!((6500..7100).contains(&within), "within-1σ count {within}");
    }

    #[test]
    fn exponential_mean() {
        let dist = AttributeDistribution::Exponential { rate: 0.5 };
        let m = sample_mean(dist, 50_000, 8);
        assert!((m - 2.0).abs() < 0.1, "mean {m} far from 2");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(dist.sample_f64(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn theoretical_means() {
        assert_eq!(
            AttributeDistribution::Uniform { lo: 0.0, hi: 2.0 }.mean(),
            Some(1.0)
        );
        assert_eq!(
            AttributeDistribution::Pareto {
                scale: 1.0,
                shape: 0.9
            }
            .mean(),
            None,
            "heavy tail: infinite mean"
        );
        assert_eq!(
            AttributeDistribution::Normal {
                mean: 5.0,
                std_dev: 1.0
            }
            .mean(),
            Some(5.0)
        );
        assert_eq!(
            AttributeDistribution::Exponential { rate: 4.0 }.mean(),
            Some(0.25)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = AttributeDistribution::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs = dist.sample_n(10, &mut a);
        let ys = dist.sample_n(10, &mut b);
        assert_eq!(xs, ys);
    }

    #[test]
    fn samples_are_valid_attributes() {
        let dist = AttributeDistribution::Pareto {
            scale: 1.0,
            shape: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(10);
        let attrs = dist.sample_n(100, &mut rng);
        assert_eq!(attrs.len(), 100);
    }
}
