//! The concurrency model of §4.5.2.
//!
//! The cycle-based model executes each exchange atomically; real networks do
//! not. The paper re-introduces concurrency by declaring some messages
//! *overlapping* ("it exists, for any couple of overlapping messages, at
//! least one instant at which they are both in-transit") and studies two
//! regimes on top of the atomic baseline:
//!
//! > For each algorithm we simulated (i) **full concurrency**: in a given
//! > cycle, all messages are overlapping messages; and (ii) **half
//! > concurrency**: in a given cycle, each message is an overlapping message
//! > with probability ½.
//!
//! In this simulator an overlapping message is deferred to an end-of-cycle
//! drain (delivered in random order after every node took its active step),
//! so its payload snapshot can go stale — producing exactly the
//! *unsuccessful swaps* the paper measures in Fig. 4(c). Non-overlapping
//! messages are delivered immediately, preserving atomic exchanges.
//!
//! View snapshots are refreshed before each active step in *every* mode,
//! mirroring the paper's setup ("each node updates its view before sending
//! its random value"); staleness enters only through in-flight overlap,
//! which is what makes the convergence impact of full concurrency "slight"
//! (Fig. 4(d)) while still wasting a measurable share of swap messages.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How much message concurrency the simulation injects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum Concurrency {
    /// The paper's baseline cycle model: atomic exchanges, fresh views,
    /// no overlapping messages.
    #[default]
    None,
    /// Each message overlaps with probability ½.
    Half,
    /// Every message overlaps.
    Full,
}

impl Concurrency {
    /// Decides whether the next message is an overlapping message.
    pub fn overlaps<R: Rng + ?Sized>(self, rng: &mut R) -> bool {
        match self {
            Concurrency::None => false,
            Concurrency::Half => rng.gen::<bool>(),
            Concurrency::Full => true,
        }
    }

    /// Whether view value snapshots are refreshed before each active step.
    ///
    /// Always true: the paper's simulation "updates its view before sending
    /// its random value" in every mode (§4.5.2) — staleness enters *only*
    /// through overlapping in-flight messages. (A node's snapshot of `j` can
    /// still go stale between its own step and the end-of-cycle drain, which
    /// is exactly the "i has lastly updated its view before j swapped"
    /// scenario the paper describes.)
    pub fn fresh_views(self) -> bool {
        true
    }

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Concurrency::None => "none",
            Concurrency::Half => "half",
            Concurrency::Full => "full",
        }
    }
}

impl fmt::Display for Concurrency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_overlaps_full_always() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!Concurrency::None.overlaps(&mut rng));
            assert!(Concurrency::Full.overlaps(&mut rng));
        }
    }

    #[test]
    fn half_overlaps_about_half_the_time() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000)
            .filter(|_| Concurrency::Half.overlaps(&mut rng))
            .count();
        assert!((4700..5300).contains(&hits), "got {hits} / 10000");
    }

    #[test]
    fn views_are_fresh_at_send_in_every_mode() {
        assert!(Concurrency::None.fresh_views());
        assert!(Concurrency::Half.fresh_views());
        assert!(Concurrency::Full.fresh_views());
    }

    #[test]
    fn labels() {
        assert_eq!(Concurrency::None.to_string(), "none");
        assert_eq!(Concurrency::Half.to_string(), "half");
        assert_eq!(Concurrency::Full.to_string(), "full");
        assert_eq!(Concurrency::default(), Concurrency::None);
    }
}
