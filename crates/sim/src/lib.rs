//! # dslice-sim
//!
//! A deterministic, cycle-based network simulator reproducing the
//! experimental setup of "Distributed Slicing in Dynamic Systems".
//!
//! The paper evaluates its protocols on PeerSim "using a simplified
//! cycle-based simulation model, where all message exchanges are atomic"
//! (§4.5), then artificially re-introduces message concurrency to study
//! unsuccessful swaps (§4.5.2) and drives churn bursts correlated with the
//! attribute values (§5.3.3). This crate rebuilds that harness natively:
//!
//! * [`Engine`] — the cycle scheduler: churn step, membership shuffle,
//!   a node-local active phase, message routing, metrics. Node state lives
//!   in a dense slab ([`dslice_core::NodeSlab`]) and the active phase can
//!   be sharded across worker threads ([`SimConfig::shards`]) with **no**
//!   effect on the simulated result.
//! * [`Concurrency`] — `None` (atomic exchanges, fresh views), `Half`
//!   (each message overlaps with probability ½) and `Full` (all messages
//!   overlap), matching §4.5.2.
//! * [`churn`] — no churn, uncorrelated churn, and the paper's
//!   attribute-correlated churn (lowest-attribute nodes leave, joiners
//!   arrive above the current maximum).
//! * [`AttributeDistribution`] — uniform, Pareto (heavy-tailed, the
//!   motivating shape of §1.1), normal and exponential attribute
//!   populations, implemented from scratch (inverse transform and
//!   Box–Muller) to keep the dependency set minimal.
//! * [`stats`] — per-cycle [`stats::CycleStats`] with SDM, GDM,
//!   message and swap counters; serializable run records for the figure
//!   pipeline.
//!
//! Every stochastic decision is derived from the run seed: sequential
//! phases (churn, membership, routing) draw from one seeded
//! [`StdRng`](rand::rngs::StdRng), while each node's active step draws
//! from its own counter-based stream keyed by `(seed, node id, cycle)`
//! ([`stream::NodeRng`]) — so runs are exactly reproducible from
//! `(config, seed)` at **any** shard count.
//!
//! ## Example: mod-JK at small scale
//!
//! ```
//! use dslice_core::Partition;
//! use dslice_sim::{Concurrency, Engine, ProtocolKind, SimConfig};
//!
//! let cfg = SimConfig {
//!     n: 128,
//!     view_size: 10,
//!     partition: Partition::equal(4).unwrap(),
//!     seed: 1,
//!     ..SimConfig::default()
//! };
//! let mut engine = Engine::new(cfg, ProtocolKind::ModJk).unwrap();
//! let record = engine.run(30);
//! let last = record.cycles.last().unwrap();
//! assert!(last.sdm < record.cycles[0].sdm, "disorder must decrease");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod concurrency;
pub mod config;
pub mod distributions;
pub mod engine;
pub mod fault;
pub mod latency;
pub mod sessions;
pub mod stats;
pub mod stream;
pub mod sweep;

pub use churn::{
    ChurnModel, ChurnPlan, ChurnSchedule, CorrelatedChurn, NoChurn, UncorrelatedChurn,
};
pub use concurrency::Concurrency;
pub use config::{ProtocolKind, SamplerKind, SimConfig};
pub use distributions::AttributeDistribution;
pub use dslice_algorithms::AttackerSpec;
pub use engine::Engine;
pub use fault::{BandPartition, NetworkFault};
pub use latency::LatencyModel;
pub use sessions::{FlashCrowd, SessionChurn, WeibullSessions};
pub use stats::{CycleStats, PhaseTimings, RunRecord};
pub use sweep::{run_seeds, AggregateRecord, Sweep};
