//! Simulation configuration and protocol selection.

use crate::concurrency::Concurrency;
use crate::distributions::AttributeDistribution;
use crate::latency::LatencyModel;
pub use dslice_algorithms::ProtocolKind;
use dslice_core::{Error, Partition, Result};
pub use dslice_gossip::SamplerKind;
use serde::{Deserialize, Serialize};

/// Static configuration of a simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Initial population size `n`.
    pub n: usize,
    /// View size `c` (the paper uses 20 for the ordering experiments and 10
    /// for the ranking ones).
    pub view_size: usize,
    /// The slice partition, global knowledge per §3.2.
    pub partition: Partition,
    /// Peer-sampling substrate.
    pub sampler: SamplerKind,
    /// Message concurrency model (§4.5.2).
    pub concurrency: Concurrency,
    /// Cross-cycle message latency (Zero = the paper's cycle model).
    pub latency: LatencyModel,
    /// Attribute-value distribution of the initial population (and of
    /// uncorrelated joiners).
    pub distribution: AttributeDistribution,
    /// Probability that any protocol message is lost in transit (view
    /// exchanges are not affected — the membership layer is the paper's
    /// given substrate). Gossip tolerates loss by design; this knob lets
    /// tests quantify how much.
    pub loss_rate: f64,
    /// RNG seed: `(config, seed)` fully determines the run.
    pub seed: u64,
    /// Worker threads for the active phase (≥ 1). The shard count **never**
    /// changes the simulated run: any value produces byte-identical
    /// [`RunRecord`](crate::RunRecord)s (per-node RNG streams make active
    /// steps order-free; see the engine docs). It only changes wall-clock.
    pub shards: usize,
    /// Metrics cadence (≥ 1): full metrics (SDM, GDM, slice-change
    /// tracking) are computed every `metrics_every`-th cycle; skipped
    /// cycles repeat the last computed disorder values and report zero
    /// slice changes. `1` (the default) measures every cycle, the paper's
    /// setup; large-population runs amortize the O(n log n) evaluation
    /// oracle with higher cadences.
    pub metrics_every: usize,
    /// Opt-in per-phase wall-clock breakdown: when set, every
    /// [`CycleStats`](crate::CycleStats) carries a
    /// [`PhaseTimings`](crate::PhaseTimings) measuring each engine phase.
    /// Off by default — timings are host noise, and the golden determinism
    /// suite compares records byte-for-byte.
    pub time_phases: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 1000,
            view_size: 20,
            partition: Partition::equal(10).expect("10 > 0"),
            sampler: SamplerKind::Cyclon,
            concurrency: Concurrency::None,
            latency: LatencyModel::Zero,
            distribution: AttributeDistribution::default(),
            loss_rate: 0.0,
            seed: 0xD51CE,
            shards: 1,
            metrics_every: 1,
            time_phases: false,
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(Error::InvalidFractions(
                "population must be non-empty".into(),
            ));
        }
        if self.view_size == 0 {
            return Err(Error::ZeroViewCapacity);
        }
        self.distribution.validate()?;
        self.latency.validate()?;
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(Error::InvalidFractions(format!(
                "loss rate must lie in [0, 1], got {}",
                self.loss_rate
            )));
        }
        if self.shards == 0 {
            return Err(Error::InvalidFractions(
                "shard count must be at least 1".into(),
            ));
        }
        if self.metrics_every == 0 {
            return Err(Error::InvalidFractions(
                "metrics cadence must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// The paper's main ordering setup (§4.5.1): 10⁴ nodes, view size 20.
    /// `slices` is 100 for Fig. 4(a)/(d) and 10 for Fig. 4(b).
    pub fn paper_ordering(slices: usize, seed: u64) -> Self {
        SimConfig {
            n: 10_000,
            view_size: 20,
            partition: Partition::equal(slices).expect("slices > 0"),
            seed,
            ..SimConfig::default()
        }
    }

    /// The paper's ranking setup (§5.3): 10⁴ nodes, view size 10,
    /// 100 slices.
    pub fn paper_ranking(seed: u64) -> Self {
        SimConfig {
            n: 10_000,
            view_size: 10,
            partition: Partition::equal(100).expect("100 > 0"),
            seed,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = SimConfig {
            n: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            view_size: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            distribution: AttributeDistribution::Uniform { lo: 2.0, hi: 1.0 },
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            loss_rate: 1.5,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            latency: LatencyModel::Uniform { min: 3, max: 1 },
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            shards: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            metrics_every: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = SimConfig {
            n: 123,
            view_size: 7,
            partition: Partition::from_fractions(&[0.25, 0.75]).unwrap(),
            concurrency: Concurrency::Half,
            distribution: AttributeDistribution::Pareto {
                scale: 2.0,
                shape: 1.25,
            },
            loss_rate: 0.05,
            seed: 99,
            shards: 4,
            metrics_every: 10,
            time_phases: true,
            ..SimConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let parsed: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.n, cfg.n);
        assert_eq!(parsed.partition, cfg.partition);
        assert_eq!(parsed.concurrency, cfg.concurrency);
        assert_eq!(parsed.distribution, cfg.distribution);
        assert_eq!(parsed.loss_rate, cfg.loss_rate);
        assert_eq!(parsed.shards, cfg.shards);
        assert_eq!(parsed.metrics_every, cfg.metrics_every);
        assert!(parsed.time_phases);
    }

    #[test]
    fn paper_presets() {
        let ordering = SimConfig::paper_ordering(100, 1);
        assert_eq!(ordering.n, 10_000);
        assert_eq!(ordering.view_size, 20);
        assert_eq!(ordering.partition.len(), 100);
        let ranking = SimConfig::paper_ranking(1);
        assert_eq!(ranking.view_size, 10);
        assert_eq!(ranking.partition.len(), 100);
    }
}
