//! Network-condition fault injection: attribute-band partitions,
//! per-region latency overrides, and probabilistic message drop.
//!
//! The paper evaluates its protocols on a fully connected cycle model;
//! this module injects the wide-area failure modes that model abstracts
//! away, as engine-held state consulted on the routing path:
//!
//! * **Attribute-band partition** ([`BandPartition`]) — the live population
//!   is split into contiguous attribute ranges ("regions"); while the
//!   partition holds, protocol messages *and* membership exchanges whose
//!   endpoints sit in different bands are severed (counted as dropped).
//!   Attribute-contiguous partitions are the adversarial shape for slicing:
//!   each island sees a censored sample stream, so rank estimates skew
//!   toward the island's local order. An optional heal cycle tears the
//!   partition down automatically.
//! * **Per-region latency overrides** — while a partition holds, messages
//!   *into* a band can follow a different [`LatencyModel`] than the global
//!   configuration, modeling asymmetric long-haul links (band 0 answers in
//!   one cycle, band 1 across an ocean).
//! * **Probabilistic drop** — every routed message is lost with a fixed
//!   probability, drawn from the engine's sequential RNG with a dedicated
//!   per-message coin (flipped only while the rate is non-zero, so a quiet
//!   fault consumes **no** randomness and leaves existing runs
//!   byte-identical).
//!
//! All fault state lives in [`NetworkFault`] and is mutated through the
//! engine's `set_network_partition` / `heal_network_partition` /
//! `set_drop_rate` / `set_region_latency` methods. Dropped and severed
//! messages surface through the existing accounting: a lost swap proposal
//! is simply never resolved, so the proposer's next activation abandons it
//! through the transactional path (`SwapAbandoned`, strikes, …).

use crate::latency::LatencyModel;
use dslice_core::{Error, Result};

/// A partition of the attribute axis into contiguous, equal-population
/// bands, frozen at activation time.
///
/// Band boundaries are computed **once**, from the live population's sorted
/// attribute values, when the partition is installed; later churn does not
/// move them (a real partition severs links, it does not re-balance
/// itself). Membership is by value: a node (or message endpoint) belongs to
/// the band whose frozen attribute range contains its attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct BandPartition {
    /// Ascending attribute cut points between adjacent bands
    /// (`bands − 1` entries). A value `a` belongs to band
    /// `#{cuts < a}`; boundary attributes stay in the lower band.
    cuts: Vec<f64>,
    /// Cycle at which the partition heals itself, if scheduled.
    heal_at: Option<usize>,
}

impl BandPartition {
    /// Splits `attributes` (any order, one entry per live node) into
    /// `bands ≥ 2` equal-population contiguous attribute ranges, healing
    /// automatically at cycle `heal_at` if given.
    ///
    /// Duplicated attribute values across a boundary collapse into the
    /// lower band (bands may then be unequal, but membership stays a pure
    /// function of the attribute).
    pub fn from_attributes(
        bands: usize,
        attributes: &[f64],
        heal_at: Option<usize>,
    ) -> Result<Self> {
        if bands < 2 {
            return Err(Error::InvalidFault(format!(
                "a partition needs at least 2 bands, got {bands}"
            )));
        }
        if attributes.len() < bands {
            return Err(Error::InvalidFault(format!(
                "cannot split {} nodes into {bands} bands",
                attributes.len()
            )));
        }
        let mut sorted = attributes.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let cuts = (1..bands).map(|b| sorted[b * n / bands - 1]).collect();
        Ok(BandPartition { cuts, heal_at })
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The band containing `attribute` (boundary values fall into the
    /// lower band).
    pub fn band_of(&self, attribute: f64) -> usize {
        self.cuts.partition_point(|&c| c < attribute)
    }

    /// The cycle at which this partition heals itself, if scheduled.
    pub fn heal_at(&self) -> Option<usize> {
        self.heal_at
    }
}

/// The engine's network-fault state: at most one [`BandPartition`], its
/// per-band latency overrides, and a global per-message drop rate.
///
/// The default value is *quiet*: no partition, no overrides, zero drop
/// rate — and a quiet fault is guaranteed to consume no RNG draws and
/// sever no messages, so it cannot perturb existing deterministic runs.
#[derive(Clone, Debug, Default)]
pub struct NetworkFault {
    partition: Option<BandPartition>,
    drop_rate: f64,
    /// Latency override per band (index = *recipient's* band); only
    /// meaningful while a partition is installed.
    region_latency: Vec<Option<LatencyModel>>,
}

impl NetworkFault {
    /// Whether this fault state can influence a run at all.
    pub fn is_quiet(&self) -> bool {
        self.partition.is_none() && self.drop_rate == 0.0
    }

    /// The installed partition, if any.
    pub fn partition(&self) -> Option<&BandPartition> {
        self.partition.as_ref()
    }

    /// The per-message drop probability.
    pub fn drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Installs `partition`, resetting all region latency overrides.
    pub fn install_partition(&mut self, partition: BandPartition) {
        self.region_latency = vec![None; partition.bands()];
        self.partition = Some(partition);
    }

    /// Tears the partition down (with its region overrides). Idempotent.
    pub fn heal(&mut self) {
        self.partition = None;
        self.region_latency.clear();
    }

    /// Whether an installed partition is scheduled to heal at `cycle` (or
    /// earlier).
    pub fn due_heal(&self, cycle: usize) -> bool {
        self.partition
            .as_ref()
            .and_then(BandPartition::heal_at)
            .is_some_and(|at| cycle >= at)
    }

    /// Sets the per-message drop probability, a finite value in `[0, 1)`.
    pub fn set_drop_rate(&mut self, rate: f64) -> Result<()> {
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(Error::InvalidFault(format!(
                "drop rate must lie in [0, 1), got {rate}"
            )));
        }
        self.drop_rate = rate;
        Ok(())
    }

    /// Overrides the latency of messages delivered *into* band `region` of
    /// the installed partition. Fails when no partition is installed, the
    /// region index is out of range, or the model itself is invalid.
    pub fn set_region_latency(&mut self, region: usize, model: LatencyModel) -> Result<()> {
        model.validate()?;
        let bands = match &self.partition {
            Some(p) => p.bands(),
            None => {
                return Err(Error::InvalidFault(
                    "region latency requires an installed partition".into(),
                ))
            }
        };
        if region >= bands {
            return Err(Error::InvalidFault(format!(
                "region {region} out of range for {bands} bands"
            )));
        }
        self.region_latency[region] = Some(model);
        Ok(())
    }

    /// Whether a message between the given endpoint attributes crosses the
    /// installed partition (always `false` when quiet).
    pub fn severed(&self, from_attribute: f64, to_attribute: f64) -> bool {
        match &self.partition {
            Some(p) => p.band_of(from_attribute) != p.band_of(to_attribute),
            None => false,
        }
    }

    /// The latency override for a message delivered to a node with the
    /// given attribute, if one is configured for its band.
    pub fn latency_override(&self, to_attribute: f64) -> Option<LatencyModel> {
        let p = self.partition.as_ref()?;
        self.region_latency[p.band_of(to_attribute)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_partition_splits_equal_populations() {
        let attrs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let p = BandPartition::from_attributes(4, &attrs, None).unwrap();
        assert_eq!(p.bands(), 4);
        assert_eq!(p.band_of(0.0), 0);
        assert_eq!(p.band_of(24.0), 0, "boundary value stays low");
        assert_eq!(p.band_of(24.5), 1);
        assert_eq!(p.band_of(60.0), 2);
        assert_eq!(p.band_of(99.0), 3);
        assert_eq!(p.band_of(1e9), 3, "beyond the frozen range: top band");
        assert_eq!(p.band_of(-1e9), 0);
    }

    #[test]
    fn band_partition_is_order_independent() {
        let fwd: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(
            BandPartition::from_attributes(2, &fwd, None).unwrap(),
            BandPartition::from_attributes(2, &rev, None).unwrap()
        );
    }

    #[test]
    fn band_partition_rejects_degenerate_parameters() {
        let attrs = [1.0, 2.0, 3.0];
        assert!(BandPartition::from_attributes(1, &attrs, None).is_err());
        assert!(BandPartition::from_attributes(4, &attrs, None).is_err());
        assert!(BandPartition::from_attributes(0, &[], None).is_err());
    }

    #[test]
    fn duplicate_attributes_collapse_into_the_lower_band() {
        let attrs = [5.0, 5.0, 5.0, 5.0, 9.0, 9.0];
        let p = BandPartition::from_attributes(2, &attrs, None).unwrap();
        assert_eq!(p.band_of(5.0), 0);
        assert_eq!(p.band_of(9.0), 1);
    }

    #[test]
    fn quiet_fault_severs_nothing() {
        let f = NetworkFault::default();
        assert!(f.is_quiet());
        assert!(!f.severed(0.0, 1e9));
        assert_eq!(f.latency_override(42.0), None);
        assert!(!f.due_heal(usize::MAX));
    }

    #[test]
    fn partition_severs_cross_band_endpoints_until_healed() {
        let attrs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut f = NetworkFault::default();
        f.install_partition(BandPartition::from_attributes(2, &attrs, Some(7)).unwrap());
        assert!(!f.is_quiet());
        assert!(f.severed(1.0, 8.0));
        assert!(!f.severed(1.0, 3.0));
        assert!(!f.severed(8.0, 9.0));
        assert!(!f.due_heal(6));
        assert!(f.due_heal(7));
        f.heal();
        assert!(f.is_quiet());
        assert!(!f.severed(1.0, 8.0));
    }

    #[test]
    fn drop_rate_is_validated() {
        let mut f = NetworkFault::default();
        assert!(f.set_drop_rate(1.0).is_err());
        assert!(f.set_drop_rate(-0.1).is_err());
        assert!(f.set_drop_rate(f64::NAN).is_err());
        assert!(f.set_drop_rate(0.25).is_ok());
        assert_eq!(f.drop_rate(), 0.25);
        assert!(!f.is_quiet());
        assert!(f.set_drop_rate(0.0).is_ok());
        assert!(f.is_quiet());
    }

    #[test]
    fn region_latency_requires_a_partition_and_a_valid_region() {
        let mut f = NetworkFault::default();
        let slow = LatencyModel::Fixed { cycles: 3 };
        assert!(f.set_region_latency(0, slow).is_err());

        let attrs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        f.install_partition(BandPartition::from_attributes(2, &attrs, None).unwrap());
        assert!(f.set_region_latency(2, slow).is_err(), "out of range");
        assert!(f
            .set_region_latency(1, LatencyModel::Uniform { min: 5, max: 2 })
            .is_err());
        assert!(f.set_region_latency(1, slow).is_ok());
        assert_eq!(f.latency_override(8.0), Some(slow));
        assert_eq!(f.latency_override(1.0), None, "band 0 keeps the default");
        // Healing clears the overrides with the partition.
        f.heal();
        assert_eq!(f.latency_override(8.0), None);
    }
}
