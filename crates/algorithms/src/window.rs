//! A fixed-capacity FIFO window of bits.
//!
//! §5.3.4 of the paper observes that "the only necessary relevant
//! information of a message is simply whether it contains a lower attribute
//! value than the attribute value of `i`, or not. Consequently, a single bit
//! per message would be sufficient" — e.g. 10⁴ samples fit in
//! `10⁴ / 8 / 1000 = 1.25 kB`.
//!
//! [`BitWindow`] is that structure: a ring buffer of single bits packed into
//! `u64` words, with O(1) push and a running popcount so the rank estimate
//! `ones / len` is O(1) too.
//!
//! [`ValueWindow`] keeps the *raw* attribute samples (not just the
//! comparison bit) in the same FIFO discipline and answers order-statistic
//! queries over them — the evidence base for the outlier-robust absorption
//! defense, which needs quartiles of the recent sample stream to decide
//! whether a new sample is statistically plausible.

use serde::{Deserialize, Serialize};

/// A fixed-capacity ring buffer of bits with a running count of ones.
///
/// Deserialization is validating: every structural invariant (`ones ≤ len ≤
/// capacity`, word-vector length, popcount agreement, no bits outside the
/// live region) is re-checked, so crafted JSON cannot materialize a window
/// whose running counters disagree with its bits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct BitWindow {
    words: Vec<u64>,
    capacity: usize,
    /// Number of bits currently stored (≤ capacity).
    len: usize,
    /// Ring head: index of the slot the next push writes to.
    head: usize,
    /// Running number of set bits among the stored ones.
    ones: usize,
}

impl BitWindow {
    /// Creates a window holding up to `capacity ≥ 1` bits.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BitWindow capacity must be at least 1");
        BitWindow {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
            head: 0,
            ones: 0,
        }
    }

    /// The maximal number of bits retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bits currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are stored yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window has wrapped (old bits are being discarded).
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Number of set bits currently stored.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Fraction of set bits, or `None` when empty.
    pub fn fraction(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.ones as f64 / self.len as f64)
        }
    }

    /// Pushes a bit, evicting the oldest one if the window is full.
    pub fn push(&mut self, bit: bool) {
        let idx = self.head;
        let (word, mask) = (idx / 64, 1u64 << (idx % 64));
        if self.len == self.capacity {
            // Evict the bit currently stored in this slot.
            if self.words[word] & mask != 0 {
                self.ones -= 1;
            }
        } else {
            self.len += 1;
        }
        if bit {
            self.words[word] |= mask;
            self.ones += 1;
        } else {
            self.words[word] &= !mask;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Clears all stored bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
        self.head = 0;
        self.ones = 0;
    }

    /// Approximate heap footprint in bytes — the paper's 1.25 kB check.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Whether bit slot `idx` is set (callers guarantee `idx < capacity`).
    fn bit(words: &[u64], idx: usize) -> bool {
        words[idx / 64] & (1u64 << (idx % 64)) != 0
    }
}

impl Deserialize for BitWindow {
    /// Validating deserialization: the derived impl would happily accept
    /// `ones > len`, `len > capacity` or bits parked outside the live
    /// region, silently corrupting every later `fraction()` answer. Each
    /// invariant `push`/`clear` maintain is re-established here instead.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct BitWindow"))?;
        let field = |name: &str| serde::__field(m, name);
        let err = |msg: String| serde::Error::custom(format!("BitWindow: {msg}"));
        let words: Vec<u64> = Deserialize::from_value(field("words"))
            .map_err(|e| serde::Error::custom(format!("BitWindow.words: {e}")))?;
        let capacity: usize = Deserialize::from_value(field("capacity"))
            .map_err(|e| serde::Error::custom(format!("BitWindow.capacity: {e}")))?;
        let len: usize = Deserialize::from_value(field("len"))
            .map_err(|e| serde::Error::custom(format!("BitWindow.len: {e}")))?;
        let head: usize = Deserialize::from_value(field("head"))
            .map_err(|e| serde::Error::custom(format!("BitWindow.head: {e}")))?;
        let ones: usize = Deserialize::from_value(field("ones"))
            .map_err(|e| serde::Error::custom(format!("BitWindow.ones: {e}")))?;

        if capacity == 0 {
            return Err(err("capacity must be at least 1".into()));
        }
        if words.len() != capacity.div_ceil(64) {
            return Err(err(format!(
                "capacity {capacity} needs {} words, got {}",
                capacity.div_ceil(64),
                words.len()
            )));
        }
        if len > capacity {
            return Err(err(format!("len {len} exceeds capacity {capacity}")));
        }
        if head >= capacity {
            return Err(err(format!(
                "head {head} out of range for capacity {capacity}"
            )));
        }
        // Until the first wrap the head trails the push count exactly;
        // afterwards len stays pinned at capacity. Any other combination is
        // unreachable from `new`/`push`/`clear`.
        if len < capacity && head != len {
            return Err(err(format!(
                "head {head} inconsistent with unwrapped len {len}"
            )));
        }
        if ones > len {
            return Err(err(format!("ones {ones} exceeds len {len}")));
        }
        let popcount: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        if popcount != ones {
            return Err(err(format!(
                "running count {ones} disagrees with stored bits ({popcount} set)"
            )));
        }
        // Every set bit must lie in the live region (push clears evicted
        // slots, and bits beyond `capacity` in the last word never exist).
        // Unwrapped windows live in [0, len); full windows own every slot.
        for idx in 0..capacity {
            let live = len == capacity || idx < len;
            if !live && Self::bit(&words, idx) {
                return Err(err(format!("set bit at dead slot {idx} (len {len})")));
            }
        }
        for idx in capacity..words.len() * 64 {
            if Self::bit(&words, idx) {
                return Err(err(format!("set bit at {idx} beyond capacity {capacity}")));
            }
        }

        Ok(BitWindow {
            words,
            capacity,
            len,
            head,
            ones,
        })
    }
}

/// A fixed-capacity FIFO window of raw `f64` samples with order-statistic
/// queries.
///
/// Where [`BitWindow`] compresses each sample to one comparison bit, this
/// window retains the values themselves so their spread can be measured:
/// the robust-absorption defense asks "is this new sample an outlier versus
/// the recent stream?" via [`tukey_fences`](ValueWindow::tukey_fences).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValueWindow {
    values: Vec<f64>,
    capacity: usize,
    /// Index the next overwrite lands on once the window has filled.
    head: usize,
}

impl ValueWindow {
    /// Creates a window retaining the freshest `capacity ≥ 1` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ValueWindow capacity must be at least 1");
        ValueWindow {
            values: Vec::new(),
            capacity,
            head: 0,
        }
    }

    /// The maximal number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples are stored yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the window has filled (old samples are being discarded).
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// Pushes a sample, evicting the oldest one if the window is full.
    pub fn push(&mut self, value: f64) {
        if self.values.len() < self.capacity {
            self.values.push(value);
        } else {
            self.values[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Discards all stored samples.
    pub fn clear(&mut self) {
        self.values.clear();
        self.head = 0;
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) of the stored samples with linear
    /// interpolation between order statistics, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        Some(Self::interpolate(&sorted, q))
    }

    /// `q`-quantile over an already-sorted slice.
    fn interpolate(sorted: &[f64], q: f64) -> f64 {
        let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }

    /// Tukey outlier fences `(q1 − k·IQR, q3 + k·IQR)` over the stored
    /// samples. `None` while the window is empty or the interquartile range
    /// is zero (a degenerate stream carries no spread information to judge
    /// outliers against).
    pub fn tukey_fences(&self, k: f64) -> Option<(f64, f64)> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let q1 = Self::interpolate(&sorted, 0.25);
        let q3 = Self::interpolate(&sorted, 0.75);
        let iqr = q3 - q1;
        if iqr <= 0.0 {
            return None;
        }
        Some((q1 - k * iqr, q3 + k * iqr))
    }

    /// Trim cuts `(quantile(pct), quantile(1 − pct))` computed over the
    /// *fence-sanitized* subset of the window: samples outside the Tukey
    /// fences with multiplier `k` are excluded from the evidence base
    /// before the quantiles are taken.
    ///
    /// This is what makes a trim band robust to stream pollution: an
    /// attacker injecting a few huge values into the window cannot drag the
    /// naive `quantile(1 − pct)` cut up to its poison level, because those
    /// values never enter the cut computation. The IQR box always lies
    /// inside its own fences, so at least half the window survives the
    /// sanitization and the quantiles stay well-defined. When the fences
    /// are undefined (zero spread) the cuts fall back to whole-window
    /// quantiles. `None` while the window is empty.
    pub fn fenced_trim_cuts(&self, k: f64, pct: f64) -> Option<(f64, f64)> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let q1 = Self::interpolate(&sorted, 0.25);
        let q3 = Self::interpolate(&sorted, 0.75);
        let iqr = q3 - q1;
        let inliers = if iqr > 0.0 {
            let lo = q1 - k * iqr;
            let hi = q3 + k * iqr;
            let start = sorted.partition_point(|&v| v < lo);
            let end = sorted.partition_point(|&v| v <= hi);
            &sorted[start..end]
        } else {
            &sorted[..]
        };
        Some((
            Self::interpolate(inliers, pct),
            Self::interpolate(inliers, 1.0 - pct),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = BitWindow::new(0);
    }

    #[test]
    fn push_and_count_before_wrap() {
        let mut w = BitWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.fraction(), None);
        w.push(true);
        w.push(false);
        w.push(true);
        assert_eq!(w.len(), 3);
        assert_eq!(w.ones(), 2);
        assert!((w.fraction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_evicts_oldest() {
        let mut w = BitWindow::new(3);
        w.push(true);
        w.push(true);
        w.push(false);
        assert!(w.is_full());
        assert_eq!(w.ones(), 2);
        w.push(false); // evicts the first `true`
        assert_eq!(w.len(), 3);
        assert_eq!(w.ones(), 1);
        w.push(false); // evicts the second `true`
        assert_eq!(w.ones(), 0);
        w.push(true); // evicts a `false`
        assert_eq!(w.ones(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut w = BitWindow::new(4);
        w.push(true);
        w.push(true);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.ones(), 0);
        assert_eq!(w.fraction(), None);
        w.push(false);
        assert_eq!(w.fraction(), Some(0.0));
    }

    #[test]
    fn paper_footprint_10k_samples() {
        // §5.3.4: 10⁴ bits ≈ 1.25 kB.
        let w = BitWindow::new(10_000);
        assert_eq!(w.size_bytes(), 10_000usize.div_ceil(64) * 8);
        assert!(w.size_bytes() <= 1256, "10k bits must fit in ~1.25 kB");
    }

    #[test]
    fn capacity_not_multiple_of_64() {
        let mut w = BitWindow::new(65);
        for i in 0..130 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.len(), 65);
        // Alternating bits: ceil or floor of half.
        assert!(w.ones() == 32 || w.ones() == 33);
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let mut w = BitWindow::new(100);
        for i in 0..137 {
            w.push(i % 3 != 0);
        }
        let json = serde_json::to_string(&w).unwrap();
        let parsed: BitWindow = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, w);
        // And an unwrapped window too.
        let mut small = BitWindow::new(70);
        small.push(true);
        small.push(false);
        let parsed: BitWindow =
            serde_json::from_str(&serde_json::to_string(&small).unwrap()).unwrap();
        assert_eq!(parsed, small);
    }

    #[test]
    fn deserialize_rejects_inconsistent_state() {
        // A valid 8-bit window with 2 stored bits (both set) for reference:
        // {"words":[3],"capacity":8,"len":2,"head":2,"ones":2}
        let cases = [
            // ones > len
            (
                r#"{"words":[3],"capacity":8,"len":1,"head":1,"ones":2}"#,
                "exceeds len",
            ),
            // len > capacity
            (
                r#"{"words":[3],"capacity":8,"len":9,"head":0,"ones":2}"#,
                "exceeds capacity",
            ),
            // zero capacity
            (
                r#"{"words":[],"capacity":0,"len":0,"head":0,"ones":0}"#,
                "at least 1",
            ),
            // wrong word-vector length
            (
                r#"{"words":[3,0],"capacity":8,"len":2,"head":2,"ones":2}"#,
                "words",
            ),
            // head out of range
            (
                r#"{"words":[3],"capacity":8,"len":8,"head":8,"ones":2}"#,
                "head",
            ),
            // head disagrees with an unwrapped len
            (
                r#"{"words":[3],"capacity":8,"len":2,"head":5,"ones":2}"#,
                "inconsistent",
            ),
            // running count disagrees with the stored bits
            (
                r#"{"words":[7],"capacity":8,"len":4,"head":4,"ones":2}"#,
                "disagrees",
            ),
            // a set bit in a dead slot (len 2 but bit 2 set; popcount agrees)
            (
                r#"{"words":[5],"capacity":8,"len":2,"head":2,"ones":2}"#,
                "dead slot",
            ),
            // a set bit beyond capacity inside the last word
            (
                r#"{"words":[256],"capacity":8,"len":8,"head":0,"ones":1}"#,
                "beyond capacity",
            ),
        ];
        for (json, needle) in cases {
            let err = serde_json::from_str::<BitWindow>(json)
                .expect_err(&format!("must reject {json}"))
                .to_string();
            assert!(
                err.contains(needle),
                "error for {json} should mention `{needle}`, got: {err}"
            );
        }
        // The reference state itself parses.
        let ok: BitWindow =
            serde_json::from_str(r#"{"words":[3],"capacity":8,"len":2,"head":2,"ones":2}"#)
                .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.ones(), 2);
    }

    #[test]
    fn value_window_fifo_and_quantiles() {
        let mut w = ValueWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(1.0), Some(4.0));
        assert_eq!(w.quantile(0.5), Some(2.5));
        // Pushing evicts the oldest: window becomes {2, 3, 4, 10}.
        w.push(10.0);
        assert_eq!(w.quantile(1.0), Some(10.0));
        assert_eq!(w.quantile(0.0), Some(2.0));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 4);
    }

    #[test]
    fn value_window_tukey_fences() {
        let mut w = ValueWindow::new(8);
        assert_eq!(w.tukey_fences(1.5), None, "empty window has no fences");
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0] {
            w.push(v);
        }
        // q1 = 2.75, q3 = 6.25, IQR = 3.5.
        let (lo, hi) = w.tukey_fences(1.5).unwrap();
        assert!((lo - (2.75 - 5.25)).abs() < 1e-12);
        assert!((hi - (6.25 + 5.25)).abs() < 1e-12);
        // Degenerate stream: all equal → no spread → no fences.
        let mut flat = ValueWindow::new(8);
        for _ in 0..8 {
            flat.push(5.0);
        }
        assert_eq!(flat.tukey_fences(1.5), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn value_window_zero_capacity_panics() {
        let _ = ValueWindow::new(0);
    }

    #[test]
    fn fenced_trim_cuts_ignore_fence_margin_pollution() {
        // 60 honest samples spread over (0, 1) plus 4 poison samples parked
        // just inside a generous admission fence. Naive whole-window cuts
        // drift upward with the poison; fence-sanitized cuts must not.
        let mut clean = ValueWindow::new(64);
        let mut polluted = ValueWindow::new(64);
        for i in 0..60 {
            let v = (i as f64 + 0.5) / 60.0;
            clean.push(v);
            polluted.push(v);
        }
        for _ in 0..4 {
            polluted.push(2.25);
        }
        let (clean_lo, clean_hi) = clean.fenced_trim_cuts(1.5, 0.1).unwrap();
        let (lo, hi) = polluted.fenced_trim_cuts(1.5, 0.1).unwrap();
        assert!(
            (lo - clean_lo).abs() < 0.02 && (hi - clean_hi).abs() < 0.02,
            "sanitized cuts ({lo:.3}, {hi:.3}) drifted from clean ({clean_lo:.3}, {clean_hi:.3})"
        );
        assert!(hi < 1.0, "upper cut must stay below the poison level");
        // The naive whole-window cut, by contrast, is dragged upward by the
        // four poison samples sitting at the top of the order: quantile 0.9
        // of the polluted window lands ~0.06 above the clean cut.
        assert!(polluted.quantile(0.9).unwrap() > clean_hi + 0.04);
    }

    #[test]
    fn fenced_trim_cuts_degenerate_cases() {
        let empty = ValueWindow::new(8);
        assert_eq!(empty.fenced_trim_cuts(1.5, 0.1), None);
        // Zero spread → fences undefined → whole-window fallback.
        let mut flat = ValueWindow::new(8);
        for _ in 0..8 {
            flat.push(5.0);
        }
        assert_eq!(flat.fenced_trim_cuts(1.5, 0.1), Some((5.0, 5.0)));
        // A single sample is its own cut on both sides.
        let mut one = ValueWindow::new(8);
        one.push(3.0);
        assert_eq!(one.fenced_trim_cuts(1.5, 0.1), Some((3.0, 3.0)));
    }

    proptest! {
        #[test]
        fn matches_reference_deque(
            cap in 1usize..200,
            bits in proptest::collection::vec(any::<bool>(), 0..500),
        ) {
            let mut w = BitWindow::new(cap);
            let mut reference: VecDeque<bool> = VecDeque::new();
            for b in bits {
                w.push(b);
                reference.push_back(b);
                if reference.len() > cap {
                    reference.pop_front();
                }
                prop_assert_eq!(w.len(), reference.len());
                let expect_ones = reference.iter().filter(|&&x| x).count();
                prop_assert_eq!(w.ones(), expect_ones);
            }
        }

        #[test]
        fn deserialized_windows_always_came_from_valid_pushes(
            cap in 1usize..100,
            bits in proptest::collection::vec(any::<bool>(), 0..300),
        ) {
            // Serialize any reachable state; deserialization must accept it
            // bit-for-bit (the validator rejects only unreachable states).
            let mut w = BitWindow::new(cap);
            for b in bits {
                w.push(b);
            }
            let parsed: BitWindow =
                serde_json::from_str(&serde_json::to_string(&w).unwrap()).unwrap();
            prop_assert_eq!(parsed, w);
        }

        #[test]
        fn value_window_quantiles_match_sorted_suffix(
            cap in 1usize..50,
            samples in proptest::collection::vec(-1e3f64..1e3, 1..200),
        ) {
            let mut w = ValueWindow::new(cap);
            for &s in &samples {
                w.push(s);
            }
            let mut tail: Vec<f64> =
                samples.iter().rev().take(cap).copied().collect();
            tail.sort_unstable_by(f64::total_cmp);
            prop_assert_eq!(w.len(), tail.len());
            prop_assert_eq!(w.quantile(0.0), Some(tail[0]));
            prop_assert_eq!(w.quantile(1.0), Some(*tail.last().unwrap()));
            if let Some((lo, hi)) = w.tukey_fences(3.0) {
                prop_assert!(lo < hi);
                // Fences bracket the interquartile range.
                prop_assert!(lo <= w.quantile(0.25).unwrap());
                prop_assert!(hi >= w.quantile(0.75).unwrap());
            }
        }

        #[test]
        fn fenced_trim_cuts_always_defined_and_ordered(
            cap in 1usize..50,
            samples in proptest::collection::vec(-1e3f64..1e3, 1..200),
            k in 0.5f64..4.0,
            pct in 0.0f64..0.25,
        ) {
            // The IQR box lies inside its own fences, so the sanitized
            // subset is never empty and the cuts are always defined and
            // ordered, whatever the stream looks like.
            let mut w = ValueWindow::new(cap);
            for &s in &samples {
                w.push(s);
            }
            let (lo, hi) = w.fenced_trim_cuts(k, pct).unwrap();
            prop_assert!(lo <= hi);
            // Cuts never leave the window's own range.
            prop_assert!(lo >= w.quantile(0.0).unwrap());
            prop_assert!(hi <= w.quantile(1.0).unwrap());
        }
    }
}
