//! A fixed-capacity FIFO window of bits.
//!
//! §5.3.4 of the paper observes that "the only necessary relevant
//! information of a message is simply whether it contains a lower attribute
//! value than the attribute value of `i`, or not. Consequently, a single bit
//! per message would be sufficient" — e.g. 10⁴ samples fit in
//! `10⁴ / 8 / 1000 = 1.25 kB`.
//!
//! [`BitWindow`] is that structure: a ring buffer of single bits packed into
//! `u64` words, with O(1) push and a running popcount so the rank estimate
//! `ones / len` is O(1) too.

use serde::{Deserialize, Serialize};

/// A fixed-capacity ring buffer of bits with a running count of ones.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitWindow {
    words: Vec<u64>,
    capacity: usize,
    /// Number of bits currently stored (≤ capacity).
    len: usize,
    /// Ring head: index of the slot the next push writes to.
    head: usize,
    /// Running number of set bits among the stored ones.
    ones: usize,
}

impl BitWindow {
    /// Creates a window holding up to `capacity ≥ 1` bits.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BitWindow capacity must be at least 1");
        BitWindow {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
            head: 0,
            ones: 0,
        }
    }

    /// The maximal number of bits retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bits currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are stored yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window has wrapped (old bits are being discarded).
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Number of set bits currently stored.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Fraction of set bits, or `None` when empty.
    pub fn fraction(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.ones as f64 / self.len as f64)
        }
    }

    /// Pushes a bit, evicting the oldest one if the window is full.
    pub fn push(&mut self, bit: bool) {
        let idx = self.head;
        let (word, mask) = (idx / 64, 1u64 << (idx % 64));
        if self.len == self.capacity {
            // Evict the bit currently stored in this slot.
            if self.words[word] & mask != 0 {
                self.ones -= 1;
            }
        } else {
            self.len += 1;
        }
        if bit {
            self.words[word] |= mask;
            self.ones += 1;
        } else {
            self.words[word] &= !mask;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Clears all stored bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
        self.head = 0;
        self.ones = 0;
    }

    /// Approximate heap footprint in bytes — the paper's 1.25 kB check.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = BitWindow::new(0);
    }

    #[test]
    fn push_and_count_before_wrap() {
        let mut w = BitWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.fraction(), None);
        w.push(true);
        w.push(false);
        w.push(true);
        assert_eq!(w.len(), 3);
        assert_eq!(w.ones(), 2);
        assert!((w.fraction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_evicts_oldest() {
        let mut w = BitWindow::new(3);
        w.push(true);
        w.push(true);
        w.push(false);
        assert!(w.is_full());
        assert_eq!(w.ones(), 2);
        w.push(false); // evicts the first `true`
        assert_eq!(w.len(), 3);
        assert_eq!(w.ones(), 1);
        w.push(false); // evicts the second `true`
        assert_eq!(w.ones(), 0);
        w.push(true); // evicts a `false`
        assert_eq!(w.ones(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut w = BitWindow::new(4);
        w.push(true);
        w.push(true);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.ones(), 0);
        assert_eq!(w.fraction(), None);
        w.push(false);
        assert_eq!(w.fraction(), Some(0.0));
    }

    #[test]
    fn paper_footprint_10k_samples() {
        // §5.3.4: 10⁴ bits ≈ 1.25 kB.
        let w = BitWindow::new(10_000);
        assert_eq!(w.size_bytes(), 10_000usize.div_ceil(64) * 8);
        assert!(w.size_bytes() <= 1256, "10k bits must fit in ~1.25 kB");
    }

    #[test]
    fn capacity_not_multiple_of_64() {
        let mut w = BitWindow::new(65);
        for i in 0..130 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.len(), 65);
        // Alternating bits: ceil or floor of half.
        assert!(w.ones() == 32 || w.ones() == 33);
    }

    proptest! {
        #[test]
        fn matches_reference_deque(
            cap in 1usize..200,
            bits in proptest::collection::vec(any::<bool>(), 0..500),
        ) {
            let mut w = BitWindow::new(cap);
            let mut reference: VecDeque<bool> = VecDeque::new();
            for b in bits {
                w.push(b);
                reference.push_back(b);
                if reference.len() > cap {
                    reference.pop_front();
                }
                prop_assert_eq!(w.len(), reference.len());
                let expect_ones = reference.iter().filter(|&&x| x).count();
                prop_assert_eq!(w.ones(), expect_ones);
            }
        }
    }
}
