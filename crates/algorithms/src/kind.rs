//! Protocol selection: one enum naming the four algorithm variants.
//!
//! Runtimes (the cycle simulator, the network runtime, the benches) pick a
//! protocol by [`ProtocolKind`] and instantiate nodes through
//! [`ProtocolKind::build`], which hides the per-variant constructor details
//! behind `Box<dyn SliceProtocol>`.

use crate::ranking::RobustFilter;
use crate::{DecayRanking, Ordering, Ranking, SlidingRanking};
use dslice_core::protocol::SliceProtocol;
use dslice_core::{Attribute, Error, NodeId, Partition, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which slicing protocol to run — the four algorithm variants the paper
/// evaluates plus the three hardened variants (sample aging, outlier-robust
/// absorption, swap liveness).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The baseline JK ordering algorithm (random misplaced partner).
    Jk,
    /// The paper's improved ordering algorithm (gain-maximizing partner).
    ModJk,
    /// mod-JK with the swap-liveness defense: partners whose proposals go
    /// unresolved repeatedly are excluded from selection for a cooldown.
    ModJkLive {
        /// Consecutive unresolved proposals before a partner is banned.
        strike_limit: u32,
        /// Activations a banned partner stays excluded.
        cooldown: u32,
    },
    /// The ranking algorithm with unbounded counters (Fig. 5).
    Ranking,
    /// The ranking algorithm with both `UPD` targets uniformly random —
    /// the boundary-targeting ablation (no `j1` heuristic).
    RankingUniform,
    /// The sliding-window ranking algorithm (§5.3.4).
    SlidingRanking {
        /// Number of freshest samples retained.
        window: usize,
    },
    /// The ranking algorithm with exponential sample aging: evidence from
    /// `k` samples ago weighs `λ^k`. The decay factor is stored in parts
    /// per million (`λ = lambda_ppm / 1_000_000`) to keep the kind `Copy`
    /// and `Eq`.
    DecayRanking {
        /// Decay factor in parts per million, in `1..=999_999`.
        lambda_ppm: u32,
    },
    /// The counter-based ranking algorithm with outlier-robust sample
    /// admission: samples outside the Tukey fences of the recent raw-value
    /// window are rejected instead of absorbed.
    RobustRanking {
        /// Number of raw samples the admission filter remembers.
        window: usize,
    },
    /// The counter-based ranking algorithm with trimmed-mean sample
    /// admission: samples outside the symmetric `[pct, 1 − pct]` quantile
    /// band of the recent raw-value window are rejected. The trim fraction
    /// is stored in parts per million (`pct = trim_ppm / 1_000_000`) to keep
    /// the kind `Copy` and `Eq`.
    TrimmedRanking {
        /// Number of raw samples the admission filter remembers.
        window: usize,
        /// Symmetric trim fraction in parts per million, in `1..=499_999`.
        trim_ppm: u32,
    },
    /// The composed poisoning defense: a sample must pass the Tukey fences
    /// *and* fall inside the symmetric trim band.
    FencedTrimmedRanking {
        /// Number of raw samples the admission filter remembers.
        window: usize,
        /// Symmetric trim fraction in parts per million, in `1..=499_999`.
        trim_ppm: u32,
    },
}

impl ProtocolKind {
    /// The sample-aging kind for a decay factor `lambda ∈ (0, 1)`, rounded
    /// to the nearest part per million.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `(0, 1)` (after ppm rounding).
    pub fn decay(lambda: f64) -> Self {
        let kind = ProtocolKind::DecayRanking {
            lambda_ppm: (lambda * 1e6).round() as u32,
        };
        kind.validate()
            .unwrap_or_else(|e| panic!("invalid decay factor {lambda}: {e}"));
        kind
    }

    /// The decay factor λ of a [`DecayRanking`](ProtocolKind::DecayRanking)
    /// kind, `None` for every other variant.
    pub fn lambda(&self) -> Option<f64> {
        match self {
            ProtocolKind::DecayRanking { lambda_ppm } => Some(*lambda_ppm as f64 / 1e6),
            _ => None,
        }
    }

    /// The trim-only kind for a fraction `pct ∈ (0, 0.5)`, rounded to the
    /// nearest part per million.
    ///
    /// # Panics
    /// Panics if `pct` is outside `(0, 0.5)` (after ppm rounding) or the
    /// window is degenerate.
    pub fn trimmed(window: usize, pct: f64) -> Self {
        let kind = ProtocolKind::TrimmedRanking {
            window,
            trim_ppm: (pct * 1e6).round() as u32,
        };
        kind.validate()
            .unwrap_or_else(|e| panic!("invalid trim fraction {pct}: {e}"));
        kind
    }

    /// The fence+trim kind for a fraction `pct ∈ (0, 0.5)`, rounded to the
    /// nearest part per million.
    ///
    /// # Panics
    /// Panics if `pct` is outside `(0, 0.5)` (after ppm rounding) or the
    /// window is degenerate.
    pub fn fenced_trimmed(window: usize, pct: f64) -> Self {
        let kind = ProtocolKind::FencedTrimmedRanking {
            window,
            trim_ppm: (pct * 1e6).round() as u32,
        };
        kind.validate()
            .unwrap_or_else(|e| panic!("invalid trim fraction {pct}: {e}"));
        kind
    }

    /// The symmetric trim fraction of a trimming kind, `None` for every
    /// other variant.
    pub fn trim_fraction(&self) -> Option<f64> {
        match self {
            ProtocolKind::TrimmedRanking { trim_ppm, .. }
            | ProtocolKind::FencedTrimmedRanking { trim_ppm, .. } => Some(*trim_ppm as f64 / 1e6),
            _ => None,
        }
    }

    /// Short label for output files and run records.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Jk => "jk",
            ProtocolKind::ModJk => "mod-jk",
            ProtocolKind::ModJkLive { .. } => "mod-jk-live",
            ProtocolKind::Ranking => "ranking",
            ProtocolKind::RankingUniform => "ranking-uniform",
            ProtocolKind::SlidingRanking { .. } => "sliding-ranking",
            ProtocolKind::DecayRanking { .. } => "decay-ranking",
            ProtocolKind::RobustRanking { .. } => "robust-ranking",
            ProtocolKind::TrimmedRanking { .. } => "trimmed-ranking",
            ProtocolKind::FencedTrimmedRanking { .. } => "fenced-trimmed-ranking",
        }
    }

    /// Whether this is an ordering-family protocol (swaps random values).
    pub fn is_ordering(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Jk | ProtocolKind::ModJk | ProtocolKind::ModJkLive { .. }
        )
    }

    /// Validates the variant's parameters — the checks `build` would
    /// otherwise hit as panics deep inside a constructor (a zero-capacity
    /// `BitWindow`, a decay factor outside `(0, 1)`).
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(Error::InvalidProtocol(msg));
        match self {
            ProtocolKind::SlidingRanking { window } if *window == 0 => {
                bad("sliding-ranking window must be at least 1".into())
            }
            ProtocolKind::DecayRanking { lambda_ppm } if !(1..=999_999).contains(lambda_ppm) => {
                bad(format!(
                    "decay factor must lie strictly between 0 and 1, got {} ppm",
                    lambda_ppm
                ))
            }
            ProtocolKind::RobustRanking { window } if *window < 4 => bad(format!(
                "robust-ranking window must be at least 4 (quartiles need spread), got {window}"
            )),
            ProtocolKind::TrimmedRanking { window, .. }
            | ProtocolKind::FencedTrimmedRanking { window, .. }
                if *window < 4 =>
            {
                bad(format!(
                    "{} window must be at least 4 (quantiles need spread), got {window}",
                    self.label()
                ))
            }
            ProtocolKind::TrimmedRanking { trim_ppm, .. }
            | ProtocolKind::FencedTrimmedRanking { trim_ppm, .. }
                if !(1..=499_999).contains(trim_ppm) =>
            {
                bad(format!(
                    "trim fraction must lie strictly between 0 and 0.5, got {trim_ppm} ppm"
                ))
            }
            ProtocolKind::ModJkLive {
                strike_limit,
                cooldown,
            } if *strike_limit == 0 || *cooldown == 0 => {
                bad("mod-jk-live strike limit and cooldown must be at least 1".into())
            }
            _ => Ok(()),
        }
    }

    /// Instantiates a protocol node. The initial random value (used directly
    /// by the ordering algorithms, and as the pre-sample fallback by the
    /// ranking ones) is drawn from `rng`.
    pub fn build<R: Rng + ?Sized>(
        &self,
        id: NodeId,
        attribute: Attribute,
        partition: &Partition,
        rng: &mut R,
    ) -> Box<dyn SliceProtocol> {
        let initial = 1.0 - rng.gen::<f64>(); // (0, 1]
        match *self {
            ProtocolKind::Jk => Box::new(Ordering::jk(id, attribute, initial)),
            ProtocolKind::ModJk => Box::new(Ordering::mod_jk(id, attribute, initial)),
            ProtocolKind::ModJkLive {
                strike_limit,
                cooldown,
            } => Box::new(Ordering::mod_jk_live(
                id,
                attribute,
                initial,
                strike_limit,
                cooldown as u64,
            )),
            ProtocolKind::Ranking => {
                Box::new(Ranking::new(id, attribute, initial, partition.clone()))
            }
            ProtocolKind::RankingUniform => Box::new(
                Ranking::new(id, attribute, initial, partition.clone())
                    .with_targeting(crate::ranking::Targeting::TwoRandom),
            ),
            ProtocolKind::SlidingRanking { window } => Box::new(SlidingRanking::with_window(
                id,
                attribute,
                initial,
                partition.clone(),
                window,
            )),
            ProtocolKind::DecayRanking { lambda_ppm } => Box::new(DecayRanking::with_lambda(
                id,
                attribute,
                initial,
                partition.clone(),
                lambda_ppm as f64 / 1e6,
            )),
            ProtocolKind::RobustRanking { window } => Box::new(
                Ranking::new(id, attribute, initial, partition.clone())
                    .with_filter(RobustFilter::new(window)),
            ),
            ProtocolKind::TrimmedRanking { window, trim_ppm } => Box::new(
                Ranking::new(id, attribute, initial, partition.clone())
                    .with_filter(RobustFilter::trimmed(window, trim_ppm as f64 / 1e6)),
            ),
            ProtocolKind::FencedTrimmedRanking { window, trim_ppm } => Box::new(
                Ranking::new(id, attribute, initial, partition.clone())
                    .with_filter(RobustFilter::fenced_trimmed(window, trim_ppm as f64 / 1e6)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels() {
        assert_eq!(ProtocolKind::Jk.label(), "jk");
        assert_eq!(ProtocolKind::ModJk.label(), "mod-jk");
        assert_eq!(ProtocolKind::Ranking.label(), "ranking");
        assert_eq!(
            ProtocolKind::SlidingRanking { window: 100 }.label(),
            "sliding-ranking"
        );
        assert_eq!(
            ProtocolKind::DecayRanking {
                lambda_ppm: 995_000
            }
            .label(),
            "decay-ranking"
        );
        assert_eq!(
            ProtocolKind::RobustRanking { window: 64 }.label(),
            "robust-ranking"
        );
        assert_eq!(
            ProtocolKind::TrimmedRanking {
                window: 64,
                trim_ppm: 100_000
            }
            .label(),
            "trimmed-ranking"
        );
        assert_eq!(
            ProtocolKind::FencedTrimmedRanking {
                window: 64,
                trim_ppm: 100_000
            }
            .label(),
            "fenced-trimmed-ranking"
        );
        assert_eq!(
            ProtocolKind::ModJkLive {
                strike_limit: 2,
                cooldown: 16
            }
            .label(),
            "mod-jk-live"
        );
    }

    #[test]
    fn family_split() {
        assert!(ProtocolKind::Jk.is_ordering());
        assert!(ProtocolKind::ModJk.is_ordering());
        assert!(ProtocolKind::ModJkLive {
            strike_limit: 2,
            cooldown: 16
        }
        .is_ordering());
        assert!(!ProtocolKind::Ranking.is_ordering());
        assert!(!ProtocolKind::SlidingRanking { window: 1 }.is_ordering());
        assert!(!ProtocolKind::DecayRanking {
            lambda_ppm: 995_000
        }
        .is_ordering());
        assert!(!ProtocolKind::RobustRanking { window: 64 }.is_ordering());
        assert!(!ProtocolKind::TrimmedRanking {
            window: 64,
            trim_ppm: 100_000
        }
        .is_ordering());
        assert!(!ProtocolKind::FencedTrimmedRanking {
            window: 64,
            trim_ppm: 100_000
        }
        .is_ordering());
    }

    #[test]
    fn decay_constructor_rounds_to_ppm() {
        let kind = ProtocolKind::decay(0.995);
        assert_eq!(
            kind,
            ProtocolKind::DecayRanking {
                lambda_ppm: 995_000
            }
        );
        assert_eq!(kind.lambda(), Some(0.995));
        assert_eq!(ProtocolKind::Ranking.lambda(), None);
    }

    #[test]
    fn trim_constructors_round_to_ppm() {
        let kind = ProtocolKind::trimmed(64, 0.1);
        assert_eq!(
            kind,
            ProtocolKind::TrimmedRanking {
                window: 64,
                trim_ppm: 100_000
            }
        );
        assert_eq!(kind.trim_fraction(), Some(0.1));
        let kind = ProtocolKind::fenced_trimmed(32, 0.05);
        assert_eq!(
            kind,
            ProtocolKind::FencedTrimmedRanking {
                window: 32,
                trim_ppm: 50_000
            }
        );
        assert_eq!(kind.trim_fraction(), Some(0.05));
        assert_eq!(ProtocolKind::Ranking.trim_fraction(), None);
        assert_eq!(
            ProtocolKind::RobustRanking { window: 64 }.trim_fraction(),
            None
        );
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert!(ProtocolKind::SlidingRanking { window: 0 }
            .validate()
            .is_err());
        assert!(ProtocolKind::DecayRanking { lambda_ppm: 0 }
            .validate()
            .is_err());
        assert!(ProtocolKind::DecayRanking {
            lambda_ppm: 1_000_000
        }
        .validate()
        .is_err());
        assert!(ProtocolKind::RobustRanking { window: 3 }
            .validate()
            .is_err());
        assert!(ProtocolKind::TrimmedRanking {
            window: 3,
            trim_ppm: 100_000
        }
        .validate()
        .is_err());
        assert!(ProtocolKind::TrimmedRanking {
            window: 64,
            trim_ppm: 0
        }
        .validate()
        .is_err());
        assert!(ProtocolKind::TrimmedRanking {
            window: 64,
            trim_ppm: 500_000
        }
        .validate()
        .is_err());
        assert!(ProtocolKind::FencedTrimmedRanking {
            window: 64,
            trim_ppm: 500_000
        }
        .validate()
        .is_err());
        assert!(ProtocolKind::ModJkLive {
            strike_limit: 0,
            cooldown: 16
        }
        .validate()
        .is_err());
        assert!(ProtocolKind::ModJkLive {
            strike_limit: 2,
            cooldown: 0
        }
        .validate()
        .is_err());
        // The healthy parameterizations pass.
        assert!(ProtocolKind::SlidingRanking { window: 512 }
            .validate()
            .is_ok());
        assert!(ProtocolKind::decay(0.998).validate().is_ok());
        assert!(ProtocolKind::RobustRanking { window: 64 }
            .validate()
            .is_ok());
        assert!(ProtocolKind::trimmed(64, 0.1).validate().is_ok());
        assert!(ProtocolKind::fenced_trimmed(64, 0.1).validate().is_ok());
        assert!(ProtocolKind::ModJkLive {
            strike_limit: 2,
            cooldown: 16
        }
        .validate()
        .is_ok());
        assert!(ProtocolKind::Jk.validate().is_ok());
    }

    #[test]
    fn build_produces_working_protocols() {
        let part = Partition::equal(4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            ProtocolKind::Jk,
            ProtocolKind::ModJk,
            ProtocolKind::ModJkLive {
                strike_limit: 2,
                cooldown: 16,
            },
            ProtocolKind::Ranking,
            ProtocolKind::SlidingRanking { window: 64 },
            ProtocolKind::DecayRanking {
                lambda_ppm: 995_000,
            },
            ProtocolKind::RobustRanking { window: 64 },
            ProtocolKind::TrimmedRanking {
                window: 64,
                trim_ppm: 100_000,
            },
            ProtocolKind::FencedTrimmedRanking {
                window: 64,
                trim_ppm: 100_000,
            },
        ] {
            let p = kind.build(
                NodeId::new(7),
                Attribute::new(3.0).unwrap(),
                &part,
                &mut rng,
            );
            assert_eq!(p.id(), NodeId::new(7));
            assert_eq!(p.attribute().value(), 3.0);
            let e = p.estimate();
            assert!(e > 0.0 && e <= 1.0, "initial estimate {e} out of range");
        }
    }

    #[test]
    fn kind_serializes() {
        for kind in [
            ProtocolKind::SlidingRanking { window: 128 },
            ProtocolKind::DecayRanking {
                lambda_ppm: 998_000,
            },
            ProtocolKind::RobustRanking { window: 64 },
            ProtocolKind::TrimmedRanking {
                window: 64,
                trim_ppm: 100_000,
            },
            ProtocolKind::FencedTrimmedRanking {
                window: 32,
                trim_ppm: 50_000,
            },
            ProtocolKind::ModJkLive {
                strike_limit: 2,
                cooldown: 16,
            },
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let parsed: ProtocolKind = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, kind);
        }
    }
}
