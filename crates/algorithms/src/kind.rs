//! Protocol selection: one enum naming the four algorithm variants.
//!
//! Runtimes (the cycle simulator, the network runtime, the benches) pick a
//! protocol by [`ProtocolKind`] and instantiate nodes through
//! [`ProtocolKind::build`], which hides the per-variant constructor details
//! behind `Box<dyn SliceProtocol>`.

use crate::{Ordering, Ranking, SlidingRanking};
use dslice_core::protocol::SliceProtocol;
use dslice_core::{Attribute, NodeId, Partition};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which slicing protocol to run — one of the four algorithm variants the
/// paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The baseline JK ordering algorithm (random misplaced partner).
    Jk,
    /// The paper's improved ordering algorithm (gain-maximizing partner).
    ModJk,
    /// The ranking algorithm with unbounded counters (Fig. 5).
    Ranking,
    /// The ranking algorithm with both `UPD` targets uniformly random —
    /// the boundary-targeting ablation (no `j1` heuristic).
    RankingUniform,
    /// The sliding-window ranking algorithm (§5.3.4).
    SlidingRanking {
        /// Number of freshest samples retained.
        window: usize,
    },
}

impl ProtocolKind {
    /// Short label for output files and run records.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Jk => "jk",
            ProtocolKind::ModJk => "mod-jk",
            ProtocolKind::Ranking => "ranking",
            ProtocolKind::RankingUniform => "ranking-uniform",
            ProtocolKind::SlidingRanking { .. } => "sliding-ranking",
        }
    }

    /// Whether this is an ordering-family protocol (swaps random values).
    pub fn is_ordering(&self) -> bool {
        matches!(self, ProtocolKind::Jk | ProtocolKind::ModJk)
    }

    /// Instantiates a protocol node. The initial random value (used directly
    /// by the ordering algorithms, and as the pre-sample fallback by the
    /// ranking ones) is drawn from `rng`.
    pub fn build<R: Rng + ?Sized>(
        &self,
        id: NodeId,
        attribute: Attribute,
        partition: &Partition,
        rng: &mut R,
    ) -> Box<dyn SliceProtocol> {
        let initial = 1.0 - rng.gen::<f64>(); // (0, 1]
        match *self {
            ProtocolKind::Jk => Box::new(Ordering::jk(id, attribute, initial)),
            ProtocolKind::ModJk => Box::new(Ordering::mod_jk(id, attribute, initial)),
            ProtocolKind::Ranking => {
                Box::new(Ranking::new(id, attribute, initial, partition.clone()))
            }
            ProtocolKind::RankingUniform => Box::new(
                Ranking::new(id, attribute, initial, partition.clone())
                    .with_targeting(crate::ranking::Targeting::TwoRandom),
            ),
            ProtocolKind::SlidingRanking { window } => Box::new(SlidingRanking::with_window(
                id,
                attribute,
                initial,
                partition.clone(),
                window,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels() {
        assert_eq!(ProtocolKind::Jk.label(), "jk");
        assert_eq!(ProtocolKind::ModJk.label(), "mod-jk");
        assert_eq!(ProtocolKind::Ranking.label(), "ranking");
        assert_eq!(
            ProtocolKind::SlidingRanking { window: 100 }.label(),
            "sliding-ranking"
        );
    }

    #[test]
    fn family_split() {
        assert!(ProtocolKind::Jk.is_ordering());
        assert!(ProtocolKind::ModJk.is_ordering());
        assert!(!ProtocolKind::Ranking.is_ordering());
        assert!(!ProtocolKind::SlidingRanking { window: 1 }.is_ordering());
    }

    #[test]
    fn build_produces_working_protocols() {
        let part = Partition::equal(4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            ProtocolKind::Jk,
            ProtocolKind::ModJk,
            ProtocolKind::Ranking,
            ProtocolKind::SlidingRanking { window: 64 },
        ] {
            let p = kind.build(
                NodeId::new(7),
                Attribute::new(3.0).unwrap(),
                &part,
                &mut rng,
            );
            assert_eq!(p.id(), NodeId::new(7));
            assert_eq!(p.attribute().value(), 3.0);
            let e = p.estimate();
            assert!(e > 0.0 && e <= 1.0, "initial estimate {e} out of range");
        }
    }

    #[test]
    fn kind_serializes() {
        let kind = ProtocolKind::SlidingRanking { window: 128 };
        let json = serde_json::to_string(&kind).unwrap();
        let parsed: ProtocolKind = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, kind);
    }
}
