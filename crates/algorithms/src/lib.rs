//! # dslice-algorithms
//!
//! The distributed slicing protocols of the paper, implemented against the
//! [`SliceProtocol`](dslice_core::protocol::SliceProtocol) interface so the
//! same code runs in the cycle simulator and the network runtime.
//!
//! ## The two families
//!
//! **Ordering algorithms** (§4) sort a set of uniform random values along
//! the attribute order by pairwise swaps; the random value then determines
//! the slice:
//!
//! * [`Ordering::jk`] — the baseline JK algorithm: gossip with a *random*
//!   misplaced neighbor.
//! * [`Ordering::mod_jk`] — the paper's first contribution: gossip with the
//!   misplaced neighbor maximizing the local-disorder gain `G_{i,j}` (Eq. 1),
//!   which accelerates convergence.
//!
//! **Ranking algorithms** (§5) estimate the normalized rank directly from the
//! stream of attribute values observed in gossip messages:
//!
//! * [`Ranking`] — unbounded counters `ℓ_i / g_i` (Fig. 5).
//! * [`SlidingRanking`] — the §5.3.4 variant that retains only the freshest
//!   samples in a fixed-size bit window, making the estimate track
//!   attribute-correlated churn.
//! * [`DecayRanking`] — exponential sample aging ([`DecayEstimator`]):
//!   evidence fades geometrically, so correlated shocks (a regional
//!   failure) are forgotten at a tunable rate instead of harmonically.
//!
//! ## Hardened variants
//!
//! Three opt-in defenses address fragilities the scenario matrix exposed:
//! sample aging (above), outlier-robust sample admission
//! ([`RobustFilter`] — bounds the influence of rank-inflating liars on
//! honest estimates), and swap liveness ([`Ordering::mod_jk_live`] —
//! excludes persistently unresponsive swap partners from selection so
//! mod-JK cannot wedge against swap-refusers), plus trimmed-mean sample
//! admission ([`RobustFilter::trimmed`] — rejects samples outside a
//! symmetric quantile band, robust even against fence-aware attackers).
//!
//! ## Adversaries
//!
//! [`Liar`] is the static attacker (fixed rank inflation, blanket swap
//! refusal); [`adversary`] holds the *adaptive* tier — [`Colluder`],
//! [`Throttler`], [`Drifter`] behind the [`AdaptiveAdversary`] trait and
//! the [`Adaptive`] wrapper — attackers that observe the defense and react.
//!
//! ## Choosing between them
//!
//! The ordering algorithms converge fast but inherit two structural problems
//! the paper identifies: slice assignment is only as accurate as the uniform
//! spread of the initial random values (§4.4, Lemma 4.1), and churn
//! correlated with the attribute skews the random-value distribution
//! irrecoverably (§5). The ranking algorithms converge more slowly but keep
//! improving without bound and readapt under churn.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod estimator;
pub mod kind;
pub mod liar;
pub mod multi;
pub mod ordering;
pub mod ranking;
pub mod window;

pub use adversary::{
    Adaptive, AdaptiveAdversary, AttackPlan, AttackerSpec, Colluder, Drifter, Throttler,
};
pub use estimator::{CounterEstimator, DecayEstimator, RankEstimator, WindowEstimator};
pub use kind::ProtocolKind;
pub use liar::Liar;
pub use multi::{AttributeVector, CompositePolicy, CompositeSlice, MultiRanking, MultiSwarm};
pub use ordering::{Ordering, SwapSelection};
pub use ranking::{
    DecayRanking, Ranking, RankingProtocol, RobustFilter, SlidingRanking, Targeting,
};
pub use window::{BitWindow, ValueWindow};
