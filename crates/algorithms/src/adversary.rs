//! Adaptive adversaries: attackers that observe the defense and react.
//!
//! [`Liar`](crate::Liar) models a *static, naive* attacker — a fixed
//! inflation factor applied blindly. The defenses added against it
//! ([`RobustFilter`](crate::RobustFilter) fences, `mod-jk-live` strike
//! bans) all leave a residual channel that a smarter attacker can probe:
//!
//! * [`Colluder`] — aims its poisoned attribute samples *just inside* the
//!   upper Tukey fence of the honest stream it observes, so fence-only
//!   admission accepts maximal distortion. Its claimed rank is a fixed
//!   target percentile (the slice it wants to squat in).
//! * [`Throttler`] — a swap-refuser that answers exactly often enough to
//!   keep wiping its strike record before `mod-jk-live` bans it, probing
//!   the configured strike limit/cooldown.
//! * [`Drifter`] — re-targets its inflation each epoch from observed
//!   rejection feedback: if its poison would land outside the fences it
//!   backs off, if comfortably inside it escalates.
//!
//! All three are **deterministic**: their state advances only on observed
//! samples and activation counts, so a node's behavior is a pure function
//! of the per-node SplitMix64 streams that already drive the simulation —
//! byte-identical runs at any shard count come for free.
//!
//! [`Adaptive`] is the runtime wrapper (the adaptive sibling of
//! [`Liar`](crate::Liar)): it boxes an honest protocol plus a strategy,
//! feeds every observed attribute to the strategy, and rewrites outgoing
//! traffic with the strategy's current [`AttackPlan`]. Runtimes decide who
//! attacks (e.g. `dslice_sim::Engine::corrupt_adaptive`) and measure the
//! damage via honest-only accuracy.

use crate::window::ValueWindow;
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{Attribute, Error, NodeId, Partition, ProtocolMsg, Result, SliceIndex, View};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Width of the mirror window an observing attacker keeps: enough samples
/// for stable quartiles, small enough to track honest shifts quickly.
const MIRROR_WINDOW: usize = 64;

/// Multiplier applied to the observed upper fence so the aimed poison lands
/// strictly *inside* the admissible band despite rounding.
const FENCE_MARGIN: f64 = 0.999;

/// What an adaptive attacker wants its external surfaces to carry right now.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackPlan {
    /// The normalized rank to claim in swap traffic and published state.
    pub claim: f64,
    /// The attribute value to stamp on outgoing `UPD` samples; `None`
    /// reports the truthful attribute (e.g. while gathering intelligence).
    pub poison: Option<f64>,
}

/// An attacker brain: observes the sample stream, re-plans each activation,
/// and decides which incoming swap probes to answer.
pub trait AdaptiveAdversary: std::fmt::Debug + Send {
    /// Short label for diagnostics and run records.
    fn label(&self) -> &'static str;

    /// Feeds one attribute value the node observed (view scan or `UPD`).
    fn observe(&mut self, value: f64);

    /// Re-plans at the start of an activation, given the wrapped protocol's
    /// honest estimate and the node's true attribute value.
    fn plan(&mut self, honest_estimate: f64, attribute: f64) -> AttackPlan;

    /// Whether to answer the next incoming atomic-swap probe. Refusals
    /// surface as unsuccessful swaps at the proposer.
    fn allow_swap(&mut self) -> bool;
}

/// Serializable parameterization of the three concrete attackers — the form
/// scenario scripts and runtimes select an adversary by.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackerSpec {
    /// Coordinated fence-aware poisoning (see [`Colluder`]).
    Colluder {
        /// The normalized rank every colluder claims, in `(0, 1]`.
        target: f64,
    },
    /// Strike-limit probing swap refusal (see [`Throttler`]).
    Throttler {
        /// Answer every `accept_period`-th incoming swap probe (≥ 1).
        accept_period: u32,
        /// Rank-inflation factor for the claimed value (finite, ≥ 1).
        inflation: f64,
    },
    /// Feedback-driven inflation drift (see [`Drifter`]).
    Drifter {
        /// Starting inflation factor (finite, ≥ 1).
        inflation: f64,
        /// Multiplicative adjustment per epoch, in `(0, 1)`.
        step: f64,
        /// Activations per re-targeting epoch (≥ 1).
        epoch: u32,
    },
}

impl AttackerSpec {
    /// Short label for run records and scenario catalogs.
    pub fn label(&self) -> &'static str {
        match self {
            AttackerSpec::Colluder { .. } => "colluder",
            AttackerSpec::Throttler { .. } => "throttler",
            AttackerSpec::Drifter { .. } => "drifter",
        }
    }

    /// Validates the parameterization, mirroring
    /// [`ProtocolKind::validate`](crate::ProtocolKind::validate).
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(Error::InvalidProtocol(msg));
        match *self {
            AttackerSpec::Colluder { target }
                if !target.is_finite() || !(0.0..=1.0).contains(&target) || target == 0.0 =>
            {
                bad(format!("colluder target must lie in (0, 1], got {target}"))
            }
            AttackerSpec::Throttler {
                accept_period: 0, ..
            } => bad("throttler accept period must be at least 1".into()),
            AttackerSpec::Throttler { inflation, .. }
                if !inflation.is_finite() || inflation < 1.0 =>
            {
                bad(format!(
                    "throttler inflation must be finite and ≥ 1, got {inflation}"
                ))
            }
            AttackerSpec::Drifter { inflation, .. }
                if !inflation.is_finite() || inflation < 1.0 =>
            {
                bad(format!(
                    "drifter inflation must be finite and ≥ 1, got {inflation}"
                ))
            }
            AttackerSpec::Drifter { step, .. }
                if !step.is_finite() || !(0.0..1.0).contains(&step) || step == 0.0 =>
            {
                bad(format!("drifter step must lie in (0, 1), got {step}"))
            }
            AttackerSpec::Drifter { epoch: 0, .. } => {
                bad("drifter epoch must be at least 1".into())
            }
            _ => Ok(()),
        }
    }

    /// Instantiates the attacker brain this spec describes.
    ///
    /// # Panics
    /// Panics if the spec does not [`validate`](AttackerSpec::validate).
    pub fn build(&self) -> Box<dyn AdaptiveAdversary> {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid attacker spec: {e}"));
        match *self {
            AttackerSpec::Colluder { target } => Box::new(Colluder::new(target)),
            AttackerSpec::Throttler {
                accept_period,
                inflation,
            } => Box::new(Throttler::new(accept_period, inflation)),
            AttackerSpec::Drifter {
                inflation,
                step,
                epoch,
            } => Box::new(Drifter::new(inflation, step, epoch)),
        }
    }
}

/// Fence-aware coordinated poisoning.
///
/// Keeps a mirror [`ValueWindow`] of the attribute stream the node observes
/// — the same evidence an honest defender's [`crate::RobustFilter`] sees — and
/// stamps outgoing `UPD` samples with a value just *inside* the observed
/// upper Tukey fence: the maximal distortion fence-only admission accepts.
/// While the mirror is still warming up it reports truthfully (no poison),
/// so the attack never exposes itself to trivial rejection. The claimed
/// rank is a fixed target percentile; swaps are always refused.
#[derive(Clone, Debug)]
pub struct Colluder {
    target: f64,
    mirror: ValueWindow,
}

impl Colluder {
    /// A colluder claiming normalized rank `target ∈ (0, 1]`.
    pub fn new(target: f64) -> Self {
        Colluder {
            target: target.clamp(f64::MIN_POSITIVE, 1.0),
            mirror: ValueWindow::new(MIRROR_WINDOW),
        }
    }
}

impl AdaptiveAdversary for Colluder {
    fn label(&self) -> &'static str {
        "colluder"
    }

    fn observe(&mut self, value: f64) {
        self.mirror.push(value);
    }

    fn plan(&mut self, _honest_estimate: f64, attribute: f64) -> AttackPlan {
        let poison = if self.mirror.is_full() {
            self.mirror
                .tukey_fences(crate::RobustFilter::DEFAULT_FENCE_K)
                // Never *deflate* below the truthful attribute: the attack
                // only ever pushes the sample stream upward.
                .map(|(_, hi)| (hi * FENCE_MARGIN).max(attribute))
        } else {
            None // intelligence-gathering warmup: stay honest
        };
        AttackPlan {
            claim: self.target,
            poison,
        }
    }

    fn allow_swap(&mut self) -> bool {
        false
    }
}

/// Strike-limit probing swap refusal.
///
/// `mod-jk-live` bans a partner after `strike_limit` consecutive unresolved
/// proposals, and *clears* the strike record whenever a proposal resolves.
/// The throttler exploits the clearing rule: it answers exactly every
/// `accept_period`-th probe, so with `accept_period ≤ strike_limit` no
/// proposer ever accumulates enough strikes to ban it — yet the vast
/// majority of proposals against it still burn as useless swaps. Against a
/// re-tuned defense (`strike_limit < accept_period`) the same attacker gets
/// banned and neutralized.
#[derive(Clone, Debug)]
pub struct Throttler {
    accept_period: u32,
    inflation: f64,
    probes: u64,
}

impl Throttler {
    /// A throttler answering every `accept_period`-th probe (≥ 1) and
    /// claiming `honest × inflation`.
    pub fn new(accept_period: u32, inflation: f64) -> Self {
        Throttler {
            accept_period: accept_period.max(1),
            inflation: if inflation.is_finite() {
                inflation.max(1.0)
            } else {
                1.0
            },
            probes: 0,
        }
    }
}

impl AdaptiveAdversary for Throttler {
    fn label(&self) -> &'static str {
        "throttler"
    }

    fn observe(&mut self, _value: f64) {}

    fn plan(&mut self, honest_estimate: f64, _attribute: f64) -> AttackPlan {
        AttackPlan {
            claim: (honest_estimate * self.inflation).min(1.0),
            poison: None,
        }
    }

    fn allow_swap(&mut self) -> bool {
        self.probes += 1;
        self.probes.is_multiple_of(self.accept_period as u64)
    }
}

/// Feedback-driven inflation drift.
///
/// Starts from a configured inflation factor and re-targets once per epoch
/// (measured in activations) using the mirror window as a rejection oracle:
/// if the current poison value would land *above* the observed upper fence
/// (i.e. the defense is rejecting it) the inflation backs off
/// multiplicatively; if it sits comfortably below the fence the attacker
/// escalates. The result hill-climbs to the strongest admissible lie
/// without any side channel — only the samples every node already sees.
#[derive(Clone, Debug)]
pub struct Drifter {
    inflation: f64,
    step: f64,
    epoch: u32,
    activations: u32,
    mirror: ValueWindow,
}

impl Drifter {
    /// Escalation headroom: poison below this fraction of the fence is
    /// "comfortably inside" and invites a raise.
    const HEADROOM: f64 = 0.9;

    /// A drifter starting at `inflation ≥ 1`, adjusting by `step ∈ (0, 1)`
    /// every `epoch ≥ 1` activations.
    pub fn new(inflation: f64, step: f64, epoch: u32) -> Self {
        Drifter {
            inflation: if inflation.is_finite() {
                inflation.max(1.0)
            } else {
                1.0
            },
            step: step.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON),
            epoch: epoch.max(1),
            activations: 0,
            mirror: ValueWindow::new(MIRROR_WINDOW),
        }
    }

    /// The current inflation factor (exposed for tests and diagnostics).
    pub fn inflation(&self) -> f64 {
        self.inflation
    }
}

impl AdaptiveAdversary for Drifter {
    fn label(&self) -> &'static str {
        "drifter"
    }

    fn observe(&mut self, value: f64) {
        self.mirror.push(value);
    }

    fn plan(&mut self, honest_estimate: f64, attribute: f64) -> AttackPlan {
        self.activations += 1;
        if self.activations.is_multiple_of(self.epoch) {
            if let Some((_, hi)) = self
                .mirror
                .tukey_fences(crate::RobustFilter::DEFAULT_FENCE_K)
            {
                let poison = attribute * self.inflation;
                if poison > hi {
                    // The defense is (or would be) rejecting us: back off.
                    self.inflation = (self.inflation * (1.0 - self.step)).max(1.0);
                } else if poison < hi * Self::HEADROOM {
                    // Comfortably admissible: escalate.
                    self.inflation *= 1.0 + self.step;
                }
            }
        }
        AttackPlan {
            claim: (honest_estimate * self.inflation).min(1.0),
            poison: Some(attribute * self.inflation),
        }
    }

    fn allow_swap(&mut self) -> bool {
        false
    }
}

/// A node running an adaptive attack: wraps an honest protocol instance and
/// an [`AdaptiveAdversary`] strategy (see the module docs).
pub struct Adaptive {
    inner: Box<dyn SliceProtocol>,
    strategy: Box<dyn AdaptiveAdversary>,
    /// The plan cached at the last activation — external surfaces
    /// (`estimate`, `published_value`, message rewrites) read this.
    plan: AttackPlan,
}

impl std::fmt::Debug for Adaptive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Adaptive")
            .field("id", &self.inner.id())
            .field("strategy", &self.strategy.label())
            .field("honest_estimate", &self.inner.estimate())
            .field("plan", &self.plan)
            .finish()
    }
}

impl Adaptive {
    /// Wraps `inner` with the attacker `spec` describes.
    ///
    /// # Panics
    /// Panics if the spec does not [`validate`](AttackerSpec::validate).
    pub fn new(inner: Box<dyn SliceProtocol>, spec: AttackerSpec) -> Self {
        let mut strategy = spec.build();
        let plan = strategy.plan(inner.estimate(), inner.attribute().value());
        Adaptive {
            inner,
            strategy,
            plan,
        }
    }

    /// The strategy's diagnostic label.
    pub fn strategy_label(&self) -> &'static str {
        self.strategy.label()
    }

    /// The honest estimate of the wrapped protocol — what the node *would*
    /// report if it were not attacking.
    pub fn honest_estimate(&self) -> f64 {
        self.inner.estimate()
    }
}

/// A [`Context`] shim that rewrites outgoing payloads per the cached
/// [`AttackPlan`] before forwarding them to the real runtime context.
struct AdaptiveCtx<'a> {
    inner: &'a mut dyn Context,
    plan: AttackPlan,
}

impl Context for AdaptiveCtx<'_> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        let msg = match msg {
            ProtocolMsg::SwapReq { from, r: _, a } => ProtocolMsg::SwapReq {
                from,
                r: self.plan.claim,
                a,
            },
            ProtocolMsg::SwapAck { from, r: _ } => ProtocolMsg::SwapAck {
                from,
                r: self.plan.claim,
            },
            ProtocolMsg::Update { from, a } => ProtocolMsg::Update {
                from,
                a: match self.plan.poison {
                    // Saturate at the truthful attribute if the poison is
                    // not a representable value.
                    Some(p) => Attribute::new(p).unwrap_or(a),
                    None => a,
                },
            },
            // View traffic belongs to the membership substrate — nothing of
            // the protocol's to rewrite.
            other => other,
        };
        self.inner.send(to, msg);
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.inner.rng()
    }

    fn record(&mut self, event: Event) {
        self.inner.record(event);
    }
}

impl SliceProtocol for Adaptive {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    /// Ground truth: the evaluation oracle must see the real attribute.
    fn attribute(&self) -> Attribute {
        self.inner.attribute()
    }

    /// The *claimed* rank from the current plan.
    fn estimate(&self) -> f64 {
        self.plan.claim
    }

    fn published_value(&self) -> f64 {
        self.plan.claim
    }

    fn on_active(&mut self, view: &View, ctx: &mut dyn Context) {
        // Intelligence phase: the strategy sees exactly the evidence an
        // honest defender's filter would.
        for entry in view.iter() {
            self.strategy.observe(entry.attribute.value());
        }
        self.plan = self
            .strategy
            .plan(self.inner.estimate(), self.inner.attribute().value());
        let mut shim = AdaptiveCtx {
            inner: ctx,
            plan: self.plan,
        };
        self.inner.on_active(view, &mut shim);
    }

    fn on_message(&mut self, view: &View, msg: ProtocolMsg, ctx: &mut dyn Context) {
        if let ProtocolMsg::Update { a, .. } = &msg {
            self.strategy.observe(a.value());
        }
        let mut shim = AdaptiveCtx {
            inner: ctx,
            plan: self.plan,
        };
        self.inner.on_message(view, msg, &mut shim);
    }

    fn slice(&self, partition: &Partition) -> SliceIndex {
        partition.slice_of(self.plan.claim)
    }

    /// Swap probes reach the strategy's throttle: refused probes burn as
    /// unsuccessful swaps at the proposer, answered ones resolve honestly
    /// (and, against `mod-jk-live`, wipe the proposer's strike record).
    fn try_atomic_swap(&mut self, other_attr: Attribute, other_value: f64) -> Option<f64> {
        if self.strategy.allow_swap() {
            self.inner.try_atomic_swap(other_attr, other_value)
        } else {
            None
        }
    }

    fn adopt_value(&mut self, value: f64) {
        self.inner.adopt_value(value);
    }

    fn set_partition(&mut self, partition: &Partition) {
        self.inner.set_partition(partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;
    use dslice_core::protocol::MockContext;
    use dslice_core::ViewEntry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adaptive(kind: ProtocolKind, attribute: f64, spec: AttackerSpec) -> Adaptive {
        let mut rng = StdRng::seed_from_u64(7);
        let partition = Partition::equal(4).unwrap();
        let inner = kind.build(
            NodeId::new(1),
            Attribute::new(attribute).unwrap(),
            &partition,
            &mut rng,
        );
        Adaptive::new(inner, spec)
    }

    fn honest_stream() -> Vec<f64> {
        (0..MIRROR_WINDOW)
            .map(|i| 30.0 + (i % 8) as f64 * 10.0)
            .collect()
    }

    #[test]
    fn colluder_stays_honest_during_warmup() {
        let mut c = Colluder::new(0.95);
        c.observe(50.0);
        let plan = c.plan(0.4, 50.0);
        assert_eq!(plan.claim, 0.95);
        assert_eq!(plan.poison, None, "no poison before the mirror fills");
        assert!(!c.allow_swap());
    }

    #[test]
    fn colluder_aims_just_inside_the_fences() {
        let mut c = Colluder::new(0.95);
        let stream = honest_stream();
        for &v in &stream {
            c.observe(v);
        }
        let mut probe = ValueWindow::new(MIRROR_WINDOW);
        for &v in &stream {
            probe.push(v);
        }
        let (_, hi) = probe
            .tukey_fences(crate::RobustFilter::DEFAULT_FENCE_K)
            .unwrap();
        let plan = c.plan(0.4, 50.0);
        let poison = plan.poison.expect("full mirror must poison");
        assert!(poison < hi, "poison {poison} must stay inside fence {hi}");
        assert!(
            poison > stream.iter().fold(f64::MIN, |m, &v| m.max(v)),
            "poison {poison} must exceed every honest value"
        );
        // A fence-only filter warmed on the same stream admits the poison.
        let mut fenced = crate::RobustFilter::new(MIRROR_WINDOW);
        for &v in &stream {
            fenced.admit(v);
        }
        assert!(fenced.admit(poison));
    }

    #[test]
    fn colluder_never_deflates_below_truth() {
        let mut c = Colluder::new(0.5);
        for &v in &honest_stream() {
            c.observe(v);
        }
        // A node whose true attribute already exceeds the fence keeps it.
        let plan = c.plan(0.9, 1e6);
        assert_eq!(plan.poison, Some(1e6));
    }

    #[test]
    fn throttler_answers_every_kth_probe() {
        let mut t = Throttler::new(3, 2.0);
        let pattern: Vec<bool> = (0..9).map(|_| t.allow_swap()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
        let plan = t.plan(0.4, 5.0);
        assert_eq!(plan.claim, 0.8);
        assert_eq!(plan.poison, None, "throttler does not poison samples");
    }

    #[test]
    fn drifter_backs_off_when_rejected_and_escalates_when_safe() {
        // Narrow honest stream around 50: fences sit near 50, so a 100×
        // inflation on attribute 50 is far outside → back-off.
        let mut d = Drifter::new(100.0, 0.5, 1);
        for i in 0..MIRROR_WINDOW {
            d.observe(45.0 + (i % 10) as f64);
        }
        let before = d.inflation();
        d.plan(0.5, 50.0);
        assert!(
            d.inflation() < before,
            "rejected poison must shrink inflation: {} -> {}",
            before,
            d.inflation()
        );
        // Tiny inflation on a mid-stream attribute is comfortably inside
        // the fences → escalate.
        let mut d = Drifter::new(1.0, 0.5, 1);
        for i in 0..MIRROR_WINDOW {
            d.observe(45.0 + (i % 10) as f64);
        }
        d.plan(0.5, 10.0);
        assert!(d.inflation() > 1.0, "safe poison must grow inflation");
        // Inflation never drops below 1 (an attacker never deflates).
        let mut d = Drifter::new(1.0, 0.9, 1);
        for _ in 0..MIRROR_WINDOW {
            d.observe(1.0);
        }
        for _ in 0..20 {
            d.plan(0.5, 1e9);
        }
        assert!(d.inflation() >= 1.0);
    }

    #[test]
    fn drifter_converges_toward_the_fence() {
        // Hill-climb: after enough epochs the drifter's poison should sit
        // in the admissible band just under the fence.
        let mut d = Drifter::new(1.0, 0.2, 1);
        let stream = honest_stream();
        let attribute = 50.0;
        let mut probe = ValueWindow::new(MIRROR_WINDOW);
        for &v in &stream {
            d.observe(v);
            probe.push(v);
        }
        let (_, hi) = probe
            .tukey_fences(crate::RobustFilter::DEFAULT_FENCE_K)
            .unwrap();
        let mut last = AttackPlan {
            claim: 0.0,
            poison: None,
        };
        for _ in 0..60 {
            last = d.plan(0.5, attribute);
        }
        let poison = last.poison.unwrap();
        assert!(
            poison <= hi && poison > hi * 0.4,
            "poison {poison} should hover under fence {hi}"
        );
    }

    #[test]
    fn spec_validation_rejects_degenerate_parameters() {
        assert!(AttackerSpec::Colluder { target: 0.0 }.validate().is_err());
        assert!(AttackerSpec::Colluder { target: 1.5 }.validate().is_err());
        assert!(AttackerSpec::Colluder { target: f64::NAN }
            .validate()
            .is_err());
        assert!(AttackerSpec::Throttler {
            accept_period: 0,
            inflation: 2.0
        }
        .validate()
        .is_err());
        assert!(AttackerSpec::Throttler {
            accept_period: 2,
            inflation: 0.5
        }
        .validate()
        .is_err());
        assert!(AttackerSpec::Drifter {
            inflation: f64::INFINITY,
            step: 0.1,
            epoch: 4
        }
        .validate()
        .is_err());
        assert!(AttackerSpec::Drifter {
            inflation: 2.0,
            step: 1.0,
            epoch: 4
        }
        .validate()
        .is_err());
        assert!(AttackerSpec::Drifter {
            inflation: 2.0,
            step: 0.1,
            epoch: 0
        }
        .validate()
        .is_err());
        // Healthy specs pass and build.
        for spec in [
            AttackerSpec::Colluder { target: 0.95 },
            AttackerSpec::Throttler {
                accept_period: 2,
                inflation: 3.0,
            },
            AttackerSpec::Drifter {
                inflation: 2.0,
                step: 0.25,
                epoch: 4,
            },
        ] {
            assert!(spec.validate().is_ok());
            let brain = spec.build();
            assert_eq!(brain.label(), spec.label());
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        for spec in [
            AttackerSpec::Colluder { target: 0.95 },
            AttackerSpec::Throttler {
                accept_period: 2,
                inflation: 3.0,
            },
            AttackerSpec::Drifter {
                inflation: 2.0,
                step: 0.25,
                epoch: 4,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let parsed: AttackerSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn wrapper_rewrites_swap_traffic_with_the_claim() {
        let mut node = adaptive(
            ProtocolKind::ModJk,
            5.0,
            AttackerSpec::Throttler {
                accept_period: 2,
                inflation: 4.0,
            },
        );
        let mut view = View::new(4).unwrap();
        view.insert(ViewEntry::new(
            NodeId::new(2),
            Attribute::new(1000.0).unwrap(),
            0.0001,
        ));
        let mut ctx = MockContext::new(StdRng::seed_from_u64(3));
        node.on_active(&view, &mut ctx);
        let claim = node.estimate();
        let sent = ctx.take_sent();
        assert!(!sent.is_empty(), "misplaced neighbor must provoke traffic");
        for (_, msg) in sent {
            if let ProtocolMsg::SwapReq { r, .. } = msg {
                assert_eq!(r, claim, "REQ must carry the claimed value");
            }
        }
    }

    #[test]
    fn wrapper_gates_swaps_through_the_throttle() {
        let mut node = adaptive(
            ProtocolKind::ModJk,
            5.0,
            AttackerSpec::Throttler {
                accept_period: 3,
                inflation: 2.0,
            },
        );
        // Each answered probe makes the inner node adopt the proposed value,
        // so later probes must offer a strictly smaller one to stay useful.
        let probe = |node: &mut Adaptive, v: f64| {
            node.try_atomic_swap(Attribute::new(9.0).unwrap(), v)
                .is_some()
        };
        let pattern: Vec<bool> = (0..6)
            .map(|i| probe(&mut node, 0.01 / (i + 1) as f64))
            .collect();
        assert_eq!(pattern, [false, false, true, false, false, true]);
    }

    #[test]
    fn wrapper_poisons_updates_only_after_warmup() {
        let mut node = adaptive(
            ProtocolKind::Ranking,
            50.0,
            AttackerSpec::Colluder { target: 0.95 },
        );
        let mut view = View::new(8).unwrap();
        for (i, &v) in honest_stream().iter().take(8).enumerate() {
            view.insert(ViewEntry::new(
                NodeId::new(10 + i as u64),
                Attribute::new(v).unwrap(),
                0.5,
            ));
        }
        let mut ctx = MockContext::new(StdRng::seed_from_u64(4));
        // First activations: mirror not yet full → truthful updates.
        node.on_active(&view, &mut ctx);
        for (_, msg) in ctx.take_sent() {
            if let ProtocolMsg::Update { a, .. } = msg {
                assert_eq!(a.value(), 50.0, "warmup updates stay truthful");
            }
        }
        // 8 observations per activation: the 64-sample mirror fills after 8.
        for _ in 0..8 {
            node.on_active(&view, &mut ctx);
        }
        let _ = ctx.take_sent();
        node.on_active(&view, &mut ctx);
        let mut saw_poison = false;
        for (_, msg) in ctx.take_sent() {
            if let ProtocolMsg::Update { a, .. } = msg {
                assert!(a.value() > 100.0, "post-warmup updates carry poison");
                saw_poison = true;
            }
        }
        assert!(saw_poison, "ranking active step must send UPDs");
        // Claim and truthful attribute stay fixed throughout.
        assert_eq!(node.estimate(), 0.95);
        assert_eq!(node.published_value(), 0.95);
        assert_eq!(node.attribute().value(), 50.0);
        assert_eq!(node.strategy_label(), "colluder");
    }
}
