//! Lying nodes: the adversarial extension of the slicing-accuracy question.
//!
//! The paper assumes every node reports its protocol state honestly; the
//! natural attack against rank-based slicing is a node that **claims a
//! higher normalized rank than its attribute warrants** — a freeloader
//! advertising itself into the premium slice. [`Liar`] wraps any honest
//! [`SliceProtocol`] and applies exactly that attack surface:
//!
//! * its *claimed* rank ([`estimate`](SliceProtocol::estimate) and
//!   [`published_value`](SliceProtocol::published_value)) is the honest
//!   inner estimate multiplied by an inflation factor, clamped to `1.0`;
//! * every outgoing message is rewritten in flight: swap traffic
//!   (`SwapReq`/`SwapAck`) carries the inflated random value, and ranking
//!   `Update` samples carry an inflated attribute — poisoning the observers'
//!   rank counters;
//! * it refuses every incoming atomic swap
//!   ([`try_atomic_swap`](SliceProtocol::try_atomic_swap) returns `None`),
//!   so honest proposals against it burn as unsuccessful swaps, and it
//!   silently drops values it should adopt
//!   ([`adopt_value`](SliceProtocol::adopt_value) is a no-op) — it never
//!   surrenders the position it claims;
//! * its *attribute* is reported truthfully: the evaluation oracle (rank
//!   cache, SDM) must keep seeing ground truth, otherwise the metrics would
//!   adopt the attacker's frame.
//!
//! The wrapper works for both families. Against the ordering family the
//! damage flows through poisoned swap values; against the ranking family
//! through inflated attribute samples (each observer's `g` counter grows
//! while `ℓ` under-grows relative to truth for observers below the lie).
//!
//! Runtimes decide *who* lies (e.g.
//! `dslice_sim::Engine::corrupt_nodes`) and measure the damage via
//! honest-only accuracy; the wrapper itself is runtime-agnostic.

use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{Attribute, NodeId, Partition, ProtocolMsg, SliceIndex, View};
use rand::RngCore;

/// A node that reports an inflated rank: wraps an honest protocol instance
/// and lies on every external surface (see the module docs).
pub struct Liar {
    inner: Box<dyn SliceProtocol>,
    inflation: f64,
}

impl std::fmt::Debug for Liar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Liar")
            .field("id", &self.inner.id())
            .field("honest_estimate", &self.inner.estimate())
            .field("claimed", &self.claim())
            .field("inflation", &self.inflation)
            .finish()
    }
}

impl Liar {
    /// Wraps `inner` so it claims `inner.estimate() * inflation` (clamped to
    /// `1.0`). `inflation` must be finite and ≥ 1 — a "liar" that deflates
    /// its rank is a different (and uninteresting) animal; the constructor
    /// clamps it up to 1.
    pub fn new(inner: Box<dyn SliceProtocol>, inflation: f64) -> Self {
        let inflation = if inflation.is_finite() {
            inflation.max(1.0)
        } else {
            1.0
        };
        Liar { inner, inflation }
    }

    /// The rank this node claims to the outside world.
    fn claim(&self) -> f64 {
        (self.inner.estimate() * self.inflation).min(1.0)
    }

    /// The configured inflation factor.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// The honest estimate of the wrapped protocol — what the node *would*
    /// report if it were not lying. Runtimes use this to quantify the gap
    /// between claim and truth.
    pub fn honest_estimate(&self) -> f64 {
        self.inner.estimate()
    }
}

/// A [`Context`] shim that rewrites outgoing payloads with the lie before
/// forwarding them to the real runtime context.
struct LyingCtx<'a> {
    inner: &'a mut dyn Context,
    claim: f64,
    inflation: f64,
}

impl Context for LyingCtx<'_> {
    fn send(&mut self, to: NodeId, msg: ProtocolMsg) {
        let msg = match msg {
            ProtocolMsg::SwapReq { from, r: _, a } => ProtocolMsg::SwapReq {
                from,
                r: self.claim,
                a,
            },
            ProtocolMsg::SwapAck { from, r: _ } => ProtocolMsg::SwapAck {
                from,
                r: self.claim,
            },
            ProtocolMsg::Update { from, a } => ProtocolMsg::Update {
                from,
                a: inflate_attribute(a, self.inflation),
            },
            // View traffic belongs to the membership substrate; the payload
            // entries were snapshotted by the sampler, not the protocol, so
            // there is nothing of ours to rewrite here.
            other => other,
        };
        self.inner.send(to, msg);
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.inner.rng()
    }

    fn record(&mut self, event: Event) {
        self.inner.record(event);
    }
}

/// Inflates an attribute sample, saturating at the original value if the
/// product stops being a valid (finite) attribute.
fn inflate_attribute(a: Attribute, inflation: f64) -> Attribute {
    Attribute::new(a.value() * inflation).unwrap_or(a)
}

impl SliceProtocol for Liar {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    /// Ground truth: the evaluation oracle must see the real attribute.
    fn attribute(&self) -> Attribute {
        self.inner.attribute()
    }

    /// The *claimed* rank: honest estimate × inflation, clamped to 1.
    fn estimate(&self) -> f64 {
        self.claim()
    }

    fn published_value(&self) -> f64 {
        self.claim()
    }

    fn on_active(&mut self, view: &View, ctx: &mut dyn Context) {
        let claim = self.claim();
        let mut lying = LyingCtx {
            inner: ctx,
            claim,
            inflation: self.inflation,
        };
        self.inner.on_active(view, &mut lying);
    }

    fn on_message(&mut self, view: &View, msg: ProtocolMsg, ctx: &mut dyn Context) {
        let claim = self.claim();
        let mut lying = LyingCtx {
            inner: ctx,
            claim,
            inflation: self.inflation,
        };
        self.inner.on_message(view, msg, &mut lying);
    }

    fn slice(&self, partition: &Partition) -> SliceIndex {
        partition.slice_of(self.claim())
    }

    /// Refuses every swap: the liar never surrenders its claimed position.
    fn try_atomic_swap(&mut self, _other_attr: Attribute, _other_value: f64) -> Option<f64> {
        None
    }

    /// Drops the value it was supposed to adopt (keeping the claim intact).
    fn adopt_value(&mut self, _value: f64) {}

    fn set_partition(&mut self, partition: &Partition) {
        self.inner.set_partition(partition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;
    use dslice_core::protocol::MockContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn liar(kind: ProtocolKind, attribute: f64, inflation: f64) -> Liar {
        let mut rng = StdRng::seed_from_u64(7);
        let partition = Partition::equal(4).unwrap();
        let inner = kind.build(
            NodeId::new(1),
            Attribute::new(attribute).unwrap(),
            &partition,
            &mut rng,
        );
        Liar::new(inner, inflation)
    }

    #[test]
    fn claim_is_inflated_and_clamped() {
        let liar = liar(ProtocolKind::ModJk, 5.0, 3.0);
        let honest = liar.honest_estimate();
        assert!((0.0..=1.0).contains(&honest));
        assert_eq!(liar.estimate(), (honest * 3.0).min(1.0));
        assert_eq!(liar.published_value(), liar.estimate());
        // Huge inflation clamps to the top of the rank interval.
        let maxed = super::Liar::new(
            liar.inner, // re-wrap the same honest core
            1e9,
        );
        assert_eq!(maxed.estimate(), 1.0);
    }

    #[test]
    fn attribute_stays_truthful() {
        let liar = liar(ProtocolKind::Ranking, 42.0, 2.0);
        assert_eq!(liar.attribute().value(), 42.0);
    }

    #[test]
    fn refuses_swaps_and_adoption() {
        let mut liar = liar(ProtocolKind::ModJk, 5.0, 2.0);
        let before = liar.estimate();
        assert_eq!(
            liar.try_atomic_swap(Attribute::new(9.0).unwrap(), 0.01),
            None
        );
        liar.adopt_value(0.01);
        assert_eq!(liar.estimate(), before, "the claim never moves");
    }

    #[test]
    fn outgoing_swap_traffic_carries_the_claim() {
        let mut liar = liar(ProtocolKind::ModJk, 5.0, 4.0);
        let claim = liar.estimate();
        // A view with one clearly misplaced neighbor provokes a SwapReq.
        let mut view = View::new(4).unwrap();
        view.insert(dslice_core::ViewEntry::new(
            NodeId::new(2),
            Attribute::new(1000.0).unwrap(),
            0.0001,
        ));
        let mut ctx = MockContext::new(StdRng::seed_from_u64(3));
        liar.on_active(&view, &mut ctx);
        let sent = ctx.take_sent();
        assert!(!sent.is_empty(), "misplaced neighbor must provoke traffic");
        for (_, msg) in sent {
            if let ProtocolMsg::SwapReq { r, .. } = msg {
                assert_eq!(r, claim, "REQ must carry the inflated value");
            }
        }
    }

    #[test]
    fn outgoing_updates_carry_inflated_attributes() {
        let mut liar = liar(ProtocolKind::Ranking, 10.0, 2.5);
        let mut view = View::new(4).unwrap();
        view.insert(dslice_core::ViewEntry::new(
            NodeId::new(2),
            Attribute::new(3.0).unwrap(),
            0.5,
        ));
        let mut ctx = MockContext::new(StdRng::seed_from_u64(4));
        liar.on_active(&view, &mut ctx);
        let updates: Vec<f64> = ctx
            .take_sent()
            .into_iter()
            .filter_map(|(_, msg)| match msg {
                ProtocolMsg::Update { a, .. } => Some(a.value()),
                _ => None,
            })
            .collect();
        assert!(!updates.is_empty(), "ranking active step sends UPDs");
        for a in updates {
            assert_eq!(a, 25.0, "UPD must carry attribute × inflation");
        }
    }

    #[test]
    fn sub_unit_inflation_is_clamped_to_honest() {
        let liar = liar(ProtocolKind::Ranking, 10.0, 0.25);
        assert_eq!(liar.inflation(), 1.0);
        assert_eq!(liar.estimate(), liar.honest_estimate());
    }
}
