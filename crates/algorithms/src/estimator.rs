//! Rank estimators: how a node aggregates the attribute samples it observes.
//!
//! The ranking algorithm (Fig. 5) estimates a node's normalized rank as the
//! fraction of observed attribute values that are ≤ its own. Two
//! accumulation policies exist in the paper:
//!
//! * [`CounterEstimator`] — the unbounded counters `ℓ_i / g_i` of Fig. 5:
//!   every sample ever seen counts forever.
//! * [`WindowEstimator`] — the sliding-window enrichment of §5.3.4: only the
//!   freshest `W` samples count (one bit each), so the estimate tracks a
//!   drifting attribute distribution under churn.

use crate::window::BitWindow;
use serde::{Deserialize, Serialize};

/// An accumulator of "was the observed attribute ≤ mine?" samples.
pub trait RankEstimator: Send + std::fmt::Debug {
    /// Folds one observation in: `lower` is true iff the observed attribute
    /// value was ≤ the owner's.
    fn absorb(&mut self, lower: bool);

    /// The current rank estimate `∈ [0, 1]`, or `None` before any sample.
    fn estimate(&self) -> Option<f64>;

    /// Total number of samples currently contributing to the estimate.
    fn samples(&self) -> usize;

    /// Resets the estimator to its initial state.
    fn reset(&mut self);
}

/// The unbounded counters of Fig. 5: `g_i` observations, `ℓ_i` of them lower.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEstimator {
    /// `g_i`: the counter of encountered attribute values.
    total: u64,
    /// `ℓ_i`: the counter of lower (or equal) attribute values.
    lower: u64,
}

impl CounterEstimator {
    /// A fresh estimator with zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `g_i` counter.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `ℓ_i` counter.
    pub fn lower(&self) -> u64 {
        self.lower
    }
}

impl RankEstimator for CounterEstimator {
    fn absorb(&mut self, lower: bool) {
        self.total += 1;
        if lower {
            self.lower += 1;
        }
    }

    fn estimate(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.lower as f64 / self.total as f64)
        }
    }

    fn samples(&self) -> usize {
        self.total as usize
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The sliding-window estimator of §5.3.4: one bit per sample, FIFO.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEstimator {
    window: BitWindow,
}

impl WindowEstimator {
    /// Creates an estimator retaining the freshest `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        WindowEstimator {
            window: BitWindow::new(capacity),
        }
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }
}

impl RankEstimator for WindowEstimator {
    fn absorb(&mut self, lower: bool) {
        self.window.push(lower);
    }

    fn estimate(&self) -> Option<f64> {
        self.window.fraction()
    }

    fn samples(&self) -> usize {
        self.window.len()
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_estimates_fraction() {
        let mut e = CounterEstimator::new();
        assert_eq!(e.estimate(), None);
        assert_eq!(e.samples(), 0);
        e.absorb(true);
        e.absorb(true);
        e.absorb(false);
        e.absorb(false);
        assert_eq!(e.estimate(), Some(0.5));
        assert_eq!(e.samples(), 4);
        assert_eq!(e.total(), 4);
        assert_eq!(e.lower(), 2);
    }

    #[test]
    fn counter_reset() {
        let mut e = CounterEstimator::new();
        e.absorb(true);
        e.reset();
        assert_eq!(e.estimate(), None);
        assert_eq!(e.samples(), 0);
    }

    #[test]
    fn counter_never_forgets() {
        // 100 lows then 100 highs → estimate 0.5 (all history counts).
        let mut e = CounterEstimator::new();
        for _ in 0..100 {
            e.absorb(true);
        }
        for _ in 0..100 {
            e.absorb(false);
        }
        assert_eq!(e.estimate(), Some(0.5));
    }

    #[test]
    fn window_forgets_old_samples() {
        // Same stream as above, window of 100 → only the highs remain.
        let mut e = WindowEstimator::new(100);
        for _ in 0..100 {
            e.absorb(true);
        }
        for _ in 0..100 {
            e.absorb(false);
        }
        assert_eq!(e.estimate(), Some(0.0));
        assert_eq!(e.samples(), 100);
        assert_eq!(e.capacity(), 100);
    }

    #[test]
    fn window_reset() {
        let mut e = WindowEstimator::new(10);
        e.absorb(true);
        e.reset();
        assert_eq!(e.estimate(), None);
    }

    proptest! {
        #[test]
        fn counter_matches_reference(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
            let mut e = CounterEstimator::new();
            for &b in &bits {
                e.absorb(b);
            }
            let expect = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
            prop_assert!((e.estimate().unwrap() - expect).abs() < 1e-12);
        }

        #[test]
        fn window_estimate_is_suffix_fraction(
            cap in 1usize..64,
            bits in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut e = WindowEstimator::new(cap);
            for &b in &bits {
                e.absorb(b);
            }
            let tail: Vec<bool> = bits.iter().rev().take(cap).copied().collect();
            let expect = tail.iter().filter(|&&b| b).count() as f64 / tail.len() as f64;
            prop_assert!((e.estimate().unwrap() - expect).abs() < 1e-12);
        }
    }
}
