//! Rank estimators: how a node aggregates the attribute samples it observes.
//!
//! The ranking algorithm (Fig. 5) estimates a node's normalized rank as the
//! fraction of observed attribute values that are ≤ its own. Two
//! accumulation policies exist in the paper:
//!
//! * [`CounterEstimator`] — the unbounded counters `ℓ_i / g_i` of Fig. 5:
//!   every sample ever seen counts forever.
//! * [`WindowEstimator`] — the sliding-window enrichment of §5.3.4: only the
//!   freshest `W` samples count (one bit each), so the estimate tracks a
//!   drifting attribute distribution under churn.
//! * [`DecayEstimator`] — exponential sample aging: a sample seen `k`
//!   absorptions ago weighs `λ^k`, so stale evidence fades geometrically
//!   instead of lingering forever (counters) or dropping off a cliff
//!   (window). This is the defense against correlated shocks — a regional
//!   failure shifts every survivor's true rank at once, and recovery speed
//!   is set by how fast pre-shock samples lose weight.

use crate::window::BitWindow;
use serde::{Deserialize, Serialize};

/// An accumulator of "was the observed attribute ≤ mine?" samples.
pub trait RankEstimator: Send + std::fmt::Debug {
    /// Folds one observation in: `lower` is true iff the observed attribute
    /// value was ≤ the owner's.
    fn absorb(&mut self, lower: bool);

    /// The current rank estimate `∈ [0, 1]`, or `None` before any sample.
    fn estimate(&self) -> Option<f64>;

    /// Total number of samples currently contributing to the estimate.
    fn samples(&self) -> usize;

    /// Resets the estimator to its initial state.
    fn reset(&mut self);
}

/// The unbounded counters of Fig. 5: `g_i` observations, `ℓ_i` of them lower.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEstimator {
    /// `g_i`: the counter of encountered attribute values.
    total: u64,
    /// `ℓ_i`: the counter of lower (or equal) attribute values.
    lower: u64,
}

impl CounterEstimator {
    /// A fresh estimator with zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `g_i` counter.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `ℓ_i` counter.
    pub fn lower(&self) -> u64 {
        self.lower
    }
}

impl RankEstimator for CounterEstimator {
    fn absorb(&mut self, lower: bool) {
        self.total += 1;
        if lower {
            self.lower += 1;
        }
    }

    fn estimate(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.lower as f64 / self.total as f64)
        }
    }

    fn samples(&self) -> usize {
        self.total as usize
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The sliding-window estimator of §5.3.4: one bit per sample, FIFO.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEstimator {
    window: BitWindow,
}

impl WindowEstimator {
    /// Creates an estimator retaining the freshest `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        WindowEstimator {
            window: BitWindow::new(capacity),
        }
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }
}

impl RankEstimator for WindowEstimator {
    fn absorb(&mut self, lower: bool) {
        self.window.push(lower);
    }

    fn estimate(&self) -> Option<f64> {
        self.window.fraction()
    }

    fn samples(&self) -> usize {
        self.window.len()
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Exponentially-decayed counters: sample aging for the ranking estimate.
///
/// Every absorption first multiplies both accumulators by `λ ∈ (0, 1)`,
/// then adds the fresh sample with weight 1, so the estimate is the
/// λ-weighted fraction of lower samples:
///
/// ```text
/// g ← λ·g + 1        ℓ ← λ·ℓ + [a_j ≤ a_i]        r̂ = ℓ / g
/// ```
///
/// The effective memory is `1 / (1 − λ)` samples; evidence older than a few
/// multiples of that horizon is negligible. Unlike [`WindowEstimator`] the
/// forgetting is smooth (no eviction boundary) and the state is two floats
/// regardless of horizon length.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecayEstimator {
    /// Decay factor λ applied to both accumulators before each absorption.
    lambda: f64,
    /// λ-weighted count of all absorbed samples (`g` above).
    total: f64,
    /// λ-weighted count of lower-or-equal samples (`ℓ` above).
    lower: f64,
}

impl DecayEstimator {
    /// Creates an estimator with decay factor `lambda`.
    ///
    /// # Panics
    /// Panics unless `lambda ∈ (0, 1)` — `λ = 1` is [`CounterEstimator`],
    /// `λ = 0` would remember only the latest sample.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda < 1.0,
            "decay factor must lie in (0, 1), got {lambda}"
        );
        DecayEstimator {
            lambda,
            total: 0.0,
            lower: 0.0,
        }
    }

    /// The decay factor λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The current λ-weighted sample mass (the `g` accumulator). Converges
    /// to `1 / (1 − λ)` under a steady sample stream.
    pub fn weight(&self) -> f64 {
        self.total
    }
}

impl RankEstimator for DecayEstimator {
    fn absorb(&mut self, lower: bool) {
        self.total = self.total * self.lambda + 1.0;
        self.lower = self.lower * self.lambda + if lower { 1.0 } else { 0.0 };
    }

    fn estimate(&self) -> Option<f64> {
        if self.total == 0.0 {
            None
        } else {
            Some(self.lower / self.total)
        }
    }

    fn samples(&self) -> usize {
        self.total.round() as usize
    }

    fn reset(&mut self) {
        self.total = 0.0;
        self.lower = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_estimates_fraction() {
        let mut e = CounterEstimator::new();
        assert_eq!(e.estimate(), None);
        assert_eq!(e.samples(), 0);
        e.absorb(true);
        e.absorb(true);
        e.absorb(false);
        e.absorb(false);
        assert_eq!(e.estimate(), Some(0.5));
        assert_eq!(e.samples(), 4);
        assert_eq!(e.total(), 4);
        assert_eq!(e.lower(), 2);
    }

    #[test]
    fn counter_reset() {
        let mut e = CounterEstimator::new();
        e.absorb(true);
        e.reset();
        assert_eq!(e.estimate(), None);
        assert_eq!(e.samples(), 0);
    }

    #[test]
    fn counter_never_forgets() {
        // 100 lows then 100 highs → estimate 0.5 (all history counts).
        let mut e = CounterEstimator::new();
        for _ in 0..100 {
            e.absorb(true);
        }
        for _ in 0..100 {
            e.absorb(false);
        }
        assert_eq!(e.estimate(), Some(0.5));
    }

    #[test]
    fn window_forgets_old_samples() {
        // Same stream as above, window of 100 → only the highs remain.
        let mut e = WindowEstimator::new(100);
        for _ in 0..100 {
            e.absorb(true);
        }
        for _ in 0..100 {
            e.absorb(false);
        }
        assert_eq!(e.estimate(), Some(0.0));
        assert_eq!(e.samples(), 100);
        assert_eq!(e.capacity(), 100);
    }

    #[test]
    fn window_reset() {
        let mut e = WindowEstimator::new(10);
        e.absorb(true);
        e.reset();
        assert_eq!(e.estimate(), None);
    }

    #[test]
    fn decay_estimates_weighted_fraction() {
        let mut e = DecayEstimator::new(0.9);
        assert_eq!(e.estimate(), None);
        assert_eq!(e.samples(), 0);
        e.absorb(true);
        assert_eq!(e.estimate(), Some(1.0));
        e.absorb(false);
        // Weights 0.9 (old true) and 1.0 (new false): 0.9 / 1.9.
        assert!((e.estimate().unwrap() - 0.9 / 1.9).abs() < 1e-12);
        assert_eq!(e.lambda(), 0.9);
    }

    #[test]
    fn decay_forgets_geometrically() {
        // 100 trues then 100 falses with λ = 0.95: the trues retain weight
        // λ^100 ≈ 0.006 of a fresh sample — the estimate collapses toward 0
        // instead of sitting at 0.5 like the counter does.
        let mut e = DecayEstimator::new(0.95);
        for _ in 0..100 {
            e.absorb(true);
        }
        assert!(e.estimate().unwrap() > 0.99);
        for _ in 0..100 {
            e.absorb(false);
        }
        assert!(e.estimate().unwrap() < 0.01, "stale evidence must fade");
        // Steady-state weight converges to 1 / (1 − λ) = 20.
        assert!((e.weight() - 20.0).abs() < 0.2);
    }

    #[test]
    fn decay_reset() {
        let mut e = DecayEstimator::new(0.99);
        e.absorb(true);
        e.reset();
        assert_eq!(e.estimate(), None);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.lambda(), 0.99, "reset keeps the decay factor");
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_rejects_lambda_one() {
        let _ = DecayEstimator::new(1.0);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_rejects_lambda_zero() {
        let _ = DecayEstimator::new(0.0);
    }

    #[test]
    fn all_estimators_roundtrip_through_serde() {
        let mut counter = CounterEstimator::new();
        let mut window = WindowEstimator::new(16);
        let mut decay = DecayEstimator::new(0.995);
        for i in 0..40 {
            let bit = i % 3 == 0;
            counter.absorb(bit);
            window.absorb(bit);
            decay.absorb(bit);
        }
        let c2: CounterEstimator =
            serde_json::from_str(&serde_json::to_string(&counter).unwrap()).unwrap();
        assert_eq!(c2, counter);
        let w2: WindowEstimator =
            serde_json::from_str(&serde_json::to_string(&window).unwrap()).unwrap();
        assert_eq!(w2, window);
        let d2: DecayEstimator =
            serde_json::from_str(&serde_json::to_string(&decay).unwrap()).unwrap();
        assert_eq!(d2, decay);
        assert_eq!(d2.estimate(), decay.estimate());
    }

    proptest! {
        #[test]
        fn counter_matches_reference(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
            let mut e = CounterEstimator::new();
            for &b in &bits {
                e.absorb(b);
            }
            let expect = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
            prop_assert!((e.estimate().unwrap() - expect).abs() < 1e-12);
        }

        #[test]
        fn window_estimate_is_suffix_fraction(
            cap in 1usize..64,
            bits in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut e = WindowEstimator::new(cap);
            for &b in &bits {
                e.absorb(b);
            }
            let tail: Vec<bool> = bits.iter().rev().take(cap).copied().collect();
            let expect = tail.iter().filter(|&&b| b).count() as f64 / tail.len() as f64;
            prop_assert!((e.estimate().unwrap() - expect).abs() < 1e-12);
        }

        #[test]
        fn decay_matches_power_sum_reference(
            lambda in 0.5f64..0.999,
            bits in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut e = DecayEstimator::new(lambda);
            for &b in &bits {
                e.absorb(b);
            }
            // Reference model: the i-th sample (0-based) ends with weight
            // λ^(n−1−i), summed directly via powi (a different evaluation
            // order than the recurrence — agreement is the point).
            let n = bits.len();
            let total: f64 = (0..n).map(|i| lambda.powi((n - 1 - i) as i32)).sum();
            let lower: f64 = bits
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| lambda.powi((n - 1 - i) as i32))
                .sum();
            let expect = lower / total;
            prop_assert!((e.estimate().unwrap() - expect).abs() < 1e-9);
            prop_assert!((e.weight() - total).abs() < 1e-9 * total.max(1.0));
        }

        #[test]
        fn decay_estimate_is_always_a_probability(
            lambda in 0.01f64..0.999,
            bits in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut e = DecayEstimator::new(lambda);
            for &b in &bits {
                e.absorb(b);
                let est = e.estimate().unwrap();
                prop_assert!((0.0..=1.0).contains(&est));
            }
        }
    }
}
