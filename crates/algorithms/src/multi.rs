//! Multi-attribute slicing — the paper's declared future work.
//!
//! §3.1 scopes the paper to one attribute: "The sorting along several
//! attributes is out of the scope of this report." This module implements
//! the natural generalization the ranking algorithm admits: a node holds a
//! *vector* of attributes (say bandwidth, storage, uptime), runs one rank
//! estimator **per dimension** over the same gossip stream (a single `UPD`
//! message carries the whole vector, so the message cost is unchanged up to
//! payload size), and a [`CompositePolicy`] maps the per-dimension rank
//! estimates to a final assignment:
//!
//! * [`CompositePolicy::Grid`] — slice each dimension independently; the
//!   assignment is the tuple of per-dimension slices (a cell of the grid).
//!   This is the "allocate nodes that are in the top 20% of bandwidth *and*
//!   the top 50% of storage" reading.
//! * [`CompositePolicy::Weighted`] — scalarize: the composite rank is the
//!   weighted mean of the per-dimension ranks, sliced against one
//!   partition. Heterogeneous capabilities trade off against each other.
//! * [`CompositePolicy::Bottleneck`] — the composite rank is the *minimum*
//!   per-dimension rank: a node is only as capable as its scarcest
//!   resource. The conservative choice for admission-style allocation.
//!
//! Everything reuses the single-attribute machinery: estimates are still
//! `ℓ/g` fractions per dimension, so Theorem 5.1's sample-size bound applies
//! dimension-wise unchanged.
//!
//! ## Example
//!
//! ```
//! use dslice_algorithms::multi::{CompositePolicy, CompositeSlice};
//! use dslice_core::Partition;
//!
//! // "Top third of bandwidth AND top third of storage."
//! let grid = CompositePolicy::Grid(vec![
//!     Partition::equal(3).unwrap(),
//!     Partition::equal(3).unwrap(),
//! ]);
//! let CompositeSlice::Cell(cell) = grid.assign(&[0.9, 0.4]) else { unreachable!() };
//! assert_eq!(cell[0].as_usize(), 2); // premium bandwidth
//! assert_eq!(cell[1].as_usize(), 1); // mid-tier storage
//!
//! // "A node is only as good as its scarcest resource."
//! let bottleneck = CompositePolicy::Bottleneck(Partition::equal(10).unwrap());
//! let CompositeSlice::Scalar(s) = bottleneck.assign(&[0.9, 0.4]) else { unreachable!() };
//! assert_eq!(s.as_usize(), 3);
//! ```

use crate::estimator::{CounterEstimator, RankEstimator};
use dslice_core::{Attribute, NodeId, Partition, SliceIndex};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// A fixed-arity vector of attribute values, one per dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeVector(Vec<Attribute>);

impl AttributeVector {
    /// Creates a vector; at least one dimension is required.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<Attribute>) -> Self {
        assert!(!values.is_empty(), "attribute vector needs ≥ 1 dimension");
        AttributeVector(values)
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value in dimension `d`.
    pub fn get(&self, d: usize) -> Attribute {
        self.0[d]
    }

    /// Iterates over the dimensions.
    pub fn iter(&self) -> impl Iterator<Item = Attribute> + '_ {
        self.0.iter().copied()
    }
}

/// How per-dimension ranks combine into a final assignment.
#[derive(Clone, Debug)]
pub enum CompositePolicy {
    /// Independent per-dimension partitions; assignment = grid cell.
    Grid(Vec<Partition>),
    /// Weighted mean of the per-dimension ranks against one partition.
    Weighted {
        /// Per-dimension weights (must match the arity; need not sum to 1 —
        /// they are normalized internally).
        weights: Vec<f64>,
        /// The partition the scalarized rank is sliced against.
        partition: Partition,
    },
    /// Minimum per-dimension rank against one partition.
    Bottleneck(Partition),
}

/// A composite slice assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompositeSlice {
    /// One slice per dimension (grid cell).
    Cell(Vec<SliceIndex>),
    /// A single slice (scalarizing policies).
    Scalar(SliceIndex),
}

impl CompositePolicy {
    /// The arity this policy expects.
    pub fn arity(&self) -> Option<usize> {
        match self {
            CompositePolicy::Grid(parts) => Some(parts.len()),
            CompositePolicy::Weighted { weights, .. } => Some(weights.len()),
            CompositePolicy::Bottleneck(_) => None, // any arity
        }
    }

    /// Maps per-dimension normalized ranks to the composite assignment.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is empty or its length contradicts the policy.
    pub fn assign(&self, ranks: &[f64]) -> CompositeSlice {
        assert!(!ranks.is_empty(), "no rank estimates");
        match self {
            CompositePolicy::Grid(parts) => {
                assert_eq!(parts.len(), ranks.len(), "arity mismatch");
                CompositeSlice::Cell(
                    parts
                        .iter()
                        .zip(ranks)
                        .map(|(p, &r)| p.slice_of(clamp_rank(r)))
                        .collect(),
                )
            }
            CompositePolicy::Weighted { weights, partition } => {
                assert_eq!(weights.len(), ranks.len(), "arity mismatch");
                let total: f64 = weights.iter().sum();
                assert!(total > 0.0, "weights must have positive mass");
                let rank: f64 = weights.iter().zip(ranks).map(|(w, r)| w * r).sum::<f64>() / total;
                CompositeSlice::Scalar(partition.slice_of(clamp_rank(rank)))
            }
            CompositePolicy::Bottleneck(partition) => {
                let rank = ranks.iter().copied().fold(f64::INFINITY, f64::min);
                CompositeSlice::Scalar(partition.slice_of(clamp_rank(rank)))
            }
        }
    }
}

/// Slice lookup requires a value in `(0, 1]`; an all-lower estimate of 0 is
/// mapped to the smallest representable rank.
fn clamp_rank(r: f64) -> f64 {
    if r <= 0.0 {
        f64::MIN_POSITIVE
    } else {
        r.min(1.0)
    }
}

/// One node's multi-attribute ranking state: a [`CounterEstimator`] per
/// dimension over the shared gossip stream.
#[derive(Clone, Debug)]
pub struct MultiRanking {
    id: NodeId,
    attrs: AttributeVector,
    estimators: Vec<CounterEstimator>,
    /// Provisional per-dimension ranks used before the first sample.
    initial: f64,
}

impl MultiRanking {
    /// Creates a node with the given attribute vector.
    pub fn new(id: NodeId, attrs: AttributeVector, initial: f64) -> Self {
        let arity = attrs.arity();
        MultiRanking {
            id,
            attrs,
            estimators: vec![CounterEstimator::new(); arity],
            initial,
        }
    }

    /// The owning node.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's attribute vector.
    pub fn attributes(&self) -> &AttributeVector {
        &self.attrs
    }

    /// Folds one observed attribute vector into the per-dimension
    /// estimators. Ties are broken by node id exactly as in the
    /// single-attribute protocol (§3.1: `a_j < a_i`, or equal and `j < i`).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch — mixed-arity populations are a deployment
    /// error this library surfaces loudly.
    pub fn observe(&mut self, from: NodeId, observed: &AttributeVector) {
        assert_eq!(
            observed.arity(),
            self.attrs.arity(),
            "attribute arity mismatch"
        );
        for (d, estimator) in self.estimators.iter_mut().enumerate() {
            let (a_j, a_i) = (observed.get(d), self.attrs.get(d));
            let lower = a_j < a_i || (a_j == a_i && from <= self.id);
            estimator.absorb(lower);
        }
    }

    /// Per-dimension rank estimates.
    pub fn ranks(&self) -> Vec<f64> {
        self.estimators
            .iter()
            .map(|e| e.estimate().unwrap_or(self.initial))
            .collect()
    }

    /// Samples folded in so far (identical across dimensions).
    pub fn samples(&self) -> usize {
        self.estimators.first().map_or(0, RankEstimator::samples)
    }

    /// The composite assignment under `policy`.
    pub fn slice(&self, policy: &CompositePolicy) -> CompositeSlice {
        policy.assign(&self.ranks())
    }
}

/// Exact per-dimension normalized ranks of a population — the ground truth
/// the estimates converge to. Returns, for each node, its rank vector
/// `α_i/n` per dimension (ties broken by id, as in §3.1).
pub fn true_rank_vectors(population: &[(NodeId, AttributeVector)]) -> BTreeMap<NodeId, Vec<f64>> {
    let n = population.len();
    let mut result: BTreeMap<NodeId, Vec<f64>> =
        population.iter().map(|(id, _)| (*id, Vec::new())).collect();
    if n == 0 {
        return result;
    }
    let arity = population[0].1.arity();
    for d in 0..arity {
        let mut order: Vec<(Attribute, NodeId)> =
            population.iter().map(|(id, v)| (v.get(d), *id)).collect();
        order.sort_by(|(a1, i1), (a2, i2)| {
            a1.partial_cmp(a2)
                .expect("attributes are finite")
                .then_with(|| i1.cmp(i2))
        });
        for (rank0, (_, id)) in order.into_iter().enumerate() {
            result
                .get_mut(&id)
                .expect("id from population")
                .push((rank0 + 1) as f64 / n as f64);
        }
    }
    result
}

/// A synchronous gossip driver for a multi-attribute population, mirroring
/// the ranking algorithm's push pattern (two `UPD` targets per node per
/// round, drawn uniformly — the `j1` boundary heuristic generalizes poorly
/// to several simultaneous partitions, so the multi-attribute variant uses
/// two uniform targets; the ablation bench quantifies the cost).
#[derive(Debug)]
pub struct MultiSwarm {
    nodes: Vec<MultiRanking>,
}

impl MultiSwarm {
    /// Builds a population from `(id, attributes)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty or arities are inconsistent.
    pub fn new(population: Vec<(NodeId, AttributeVector)>, initial: f64) -> Self {
        assert!(!population.is_empty(), "empty population");
        let arity = population[0].1.arity();
        for (_, v) in &population {
            assert_eq!(v.arity(), arity, "inconsistent attribute arity");
        }
        MultiSwarm {
            nodes: population
                .into_iter()
                .map(|(id, v)| MultiRanking::new(id, v, initial))
                .collect(),
        }
    }

    /// The population.
    pub fn nodes(&self) -> &[MultiRanking] {
        &self.nodes
    }

    /// One synchronous round: every node, in random order, observes its
    /// gossip view (here: `fanout` random peers) and pushes its vector to
    /// two random peers.
    pub fn round<R: Rng>(&mut self, fanout: usize, rng: &mut R) {
        let n = self.nodes.len();
        if n < 2 {
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for &i in &order {
            // Scan: fold `fanout` random peers' vectors in (Fig. 5 lines
            // 5–11, with the view replaced by a uniform draw).
            for _ in 0..fanout {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let (from, observed) = (self.nodes[j].id(), self.nodes[j].attributes().clone());
                self.nodes[i].observe(from, &observed);
            }
            // Push to two random targets (lines 12–14 with j1 uniform).
            for _ in 0..2 {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let (from, observed) = (self.nodes[i].id(), self.nodes[i].attributes().clone());
                self.nodes[j].observe(from, &observed);
            }
        }
    }

    /// Fraction of nodes whose composite assignment matches ground truth.
    pub fn accuracy(&self, policy: &CompositePolicy) -> f64 {
        let population: Vec<(NodeId, AttributeVector)> = self
            .nodes
            .iter()
            .map(|n| (n.id(), n.attributes().clone()))
            .collect();
        let truth = true_rank_vectors(&population);
        let correct = self
            .nodes
            .iter()
            .filter(|n| {
                let true_assignment = policy.assign(&truth[&n.id()]);
                n.slice(policy) == true_assignment
            })
            .count();
        correct as f64 / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn vector(values: &[f64]) -> AttributeVector {
        AttributeVector::new(values.iter().map(|&v| attr(v)).collect())
    }

    fn id(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    #[should_panic(expected = "1 dimension")]
    fn empty_vector_panics() {
        let _ = AttributeVector::new(Vec::new());
    }

    #[test]
    fn grid_policy_assigns_cells() {
        let policy = CompositePolicy::Grid(vec![
            Partition::equal(2).unwrap(),
            Partition::equal(4).unwrap(),
        ]);
        let cell = policy.assign(&[0.9, 0.3]);
        let CompositeSlice::Cell(slices) = cell else {
            panic!("grid must produce a cell");
        };
        assert_eq!(slices[0].as_usize(), 1);
        assert_eq!(slices[1].as_usize(), 1);
    }

    #[test]
    fn weighted_policy_scalarizes() {
        let policy = CompositePolicy::Weighted {
            weights: vec![1.0, 1.0],
            partition: Partition::equal(10).unwrap(),
        };
        // (0.8 + 0.5)/2 = 0.65 → slice 6 of 10 (interval (0.6, 0.7]).
        let CompositeSlice::Scalar(s) = policy.assign(&[0.8, 0.5]) else {
            panic!("weighted must produce a scalar");
        };
        assert_eq!(s.as_usize(), 6);
    }

    #[test]
    fn bottleneck_policy_takes_the_minimum() {
        let policy = CompositePolicy::Bottleneck(Partition::equal(10).unwrap());
        let CompositeSlice::Scalar(s) = policy.assign(&[0.95, 0.15, 0.7]) else {
            panic!("bottleneck must produce a scalar");
        };
        assert_eq!(s.as_usize(), 1, "min rank 0.15 → slice 1");
    }

    #[test]
    fn zero_rank_is_clamped_into_the_domain() {
        let policy = CompositePolicy::Bottleneck(Partition::equal(2).unwrap());
        let CompositeSlice::Scalar(s) = policy.assign(&[0.0]) else {
            panic!()
        };
        assert_eq!(s.as_usize(), 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn grid_arity_mismatch_panics() {
        let policy = CompositePolicy::Grid(vec![Partition::equal(2).unwrap()]);
        let _ = policy.assign(&[0.5, 0.5]);
    }

    #[test]
    fn observe_updates_every_dimension_with_tiebreak() {
        let mut node = MultiRanking::new(id(5), vector(&[10.0, 10.0]), 0.5);
        // Equal attributes, lower id → counts as lower (j ≤ i).
        node.observe(id(3), &vector(&[10.0, 20.0]));
        let ranks = node.ranks();
        assert_eq!(ranks[0], 1.0, "tie from lower id counts as lower");
        assert_eq!(ranks[1], 0.0, "20 > 10");
        // Equal attributes, higher id → counts as higher.
        node.observe(id(9), &vector(&[10.0, 5.0]));
        let ranks = node.ranks();
        assert_eq!(ranks[0], 0.5);
        assert_eq!(ranks[1], 0.5);
        assert_eq!(node.samples(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn observe_arity_mismatch_panics() {
        let mut node = MultiRanking::new(id(1), vector(&[1.0]), 0.5);
        node.observe(id(2), &vector(&[1.0, 2.0]));
    }

    #[test]
    fn true_rank_vectors_rank_each_dimension_independently() {
        // Node 1: best in dim 0, worst in dim 1. Node 3: the reverse.
        let population = vec![
            (id(1), vector(&[30.0, 1.0])),
            (id(2), vector(&[20.0, 2.0])),
            (id(3), vector(&[10.0, 3.0])),
        ];
        let truth = true_rank_vectors(&population);
        assert_eq!(truth[&id(1)], vec![1.0, 1.0 / 3.0]);
        assert_eq!(truth[&id(2)], vec![2.0 / 3.0, 2.0 / 3.0]);
        assert_eq!(truth[&id(3)], vec![1.0 / 3.0, 1.0]);
    }

    #[test]
    fn true_ranks_break_ties_by_id() {
        let population = vec![(id(2), vector(&[5.0])), (id(1), vector(&[5.0]))];
        let truth = true_rank_vectors(&population);
        assert_eq!(truth[&id(1)], vec![0.5], "lower id ranks first on ties");
        assert_eq!(truth[&id(2)], vec![1.0]);
    }

    fn anti_correlated_population(n: usize) -> Vec<(NodeId, AttributeVector)> {
        // Dimension 0 ascending, dimension 1 descending: forces genuinely
        // different per-dimension ranks for every node.
        (0..n)
            .map(|i| (id(i as u64), vector(&[i as f64, (n - i) as f64])))
            .collect()
    }

    #[test]
    fn swarm_estimates_converge_to_true_ranks() {
        let n = 200;
        let mut swarm = MultiSwarm::new(anti_correlated_population(n), 0.5);
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..60 {
            swarm.round(8, &mut rng);
        }
        let population: Vec<(NodeId, AttributeVector)> = swarm
            .nodes()
            .iter()
            .map(|node| (node.id(), node.attributes().clone()))
            .collect();
        let truth = true_rank_vectors(&population);
        let mut worst: f64 = 0.0;
        for node in swarm.nodes() {
            for (est, exact) in node.ranks().iter().zip(&truth[&node.id()]) {
                worst = worst.max((est - exact).abs());
            }
        }
        assert!(worst < 0.08, "worst per-dimension rank error {worst:.3}");
    }

    #[test]
    fn grid_accuracy_improves_with_rounds() {
        let n = 150;
        let policy = CompositePolicy::Grid(vec![
            Partition::equal(3).unwrap(),
            Partition::equal(3).unwrap(),
        ]);
        let mut swarm = MultiSwarm::new(anti_correlated_population(n), 0.5);
        let mut rng = StdRng::seed_from_u64(43);
        swarm.round(4, &mut rng);
        let early = swarm.accuracy(&policy);
        for _ in 0..80 {
            swarm.round(4, &mut rng);
        }
        let late = swarm.accuracy(&policy);
        assert!(
            late > early,
            "accuracy must improve: {early:.3} -> {late:.3}"
        );
        assert!(late > 0.8, "converged grid accuracy {late:.3} too low");
    }

    #[test]
    fn bottleneck_accuracy_converges() {
        let n = 150;
        let policy = CompositePolicy::Bottleneck(Partition::equal(4).unwrap());
        let mut swarm = MultiSwarm::new(anti_correlated_population(n), 0.5);
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..80 {
            swarm.round(4, &mut rng);
        }
        assert!(swarm.accuracy(&policy) > 0.75);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn ranks(arity: usize) -> impl Strategy<Value = Vec<f64>> {
            proptest::collection::vec(0.0f64..=1.0, arity..=arity)
        }

        proptest! {
            /// Every policy is total over valid rank vectors and produces
            /// indices within its partitions.
            #[test]
            fn policies_are_total(r in ranks(3)) {
                let grid = CompositePolicy::Grid(vec![
                    Partition::equal(4).unwrap(),
                    Partition::equal(2).unwrap(),
                    Partition::equal(7).unwrap(),
                ]);
                if let CompositeSlice::Cell(cell) = grid.assign(&r) {
                    prop_assert!(cell[0].as_usize() < 4);
                    prop_assert!(cell[1].as_usize() < 2);
                    prop_assert!(cell[2].as_usize() < 7);
                } else {
                    prop_assert!(false, "grid must yield a cell");
                }
                let weighted = CompositePolicy::Weighted {
                    weights: vec![1.0, 2.0, 3.0],
                    partition: Partition::equal(5).unwrap(),
                };
                let CompositeSlice::Scalar(s) = weighted.assign(&r) else {
                    return Err(TestCaseError::fail("weighted must yield a scalar"));
                };
                prop_assert!(s.as_usize() < 5);
                let bottleneck = CompositePolicy::Bottleneck(Partition::equal(5).unwrap());
                let CompositeSlice::Scalar(s) = bottleneck.assign(&r) else {
                    return Err(TestCaseError::fail("bottleneck must yield a scalar"));
                };
                prop_assert!(s.as_usize() < 5);
            }

            /// The bottleneck slice never exceeds any single dimension's
            /// slice under the same partition.
            #[test]
            fn bottleneck_is_a_lower_bound(r in ranks(3)) {
                let part = Partition::equal(6).unwrap();
                let bottleneck = CompositePolicy::Bottleneck(part.clone());
                let CompositeSlice::Scalar(b) = bottleneck.assign(&r) else {
                    return Err(TestCaseError::fail("scalar expected"));
                };
                for &rank in &r {
                    let clamped = if rank <= 0.0 { f64::MIN_POSITIVE } else { rank.min(1.0) };
                    let per_dim = part.slice_of(clamped);
                    prop_assert!(b.as_usize() <= per_dim.as_usize());
                }
            }

            /// The weighted rank is monotone: raising any dimension's rank
            /// never lowers the composite slice.
            #[test]
            fn weighted_is_monotone(r in ranks(2), bump in 0.0f64..0.5) {
                let policy = CompositePolicy::Weighted {
                    weights: vec![1.0, 1.0],
                    partition: Partition::equal(10).unwrap(),
                };
                let CompositeSlice::Scalar(before) = policy.assign(&r) else {
                    return Err(TestCaseError::fail("scalar expected"));
                };
                let bumped = vec![(r[0] + bump).min(1.0), r[1]];
                let CompositeSlice::Scalar(after) = policy.assign(&bumped) else {
                    return Err(TestCaseError::fail("scalar expected"));
                };
                prop_assert!(after.as_usize() >= before.as_usize());
            }

            /// true_rank_vectors produces, in every dimension, a permutation
            /// of {1/n, 2/n, …, 1}.
            #[test]
            fn true_ranks_are_permutations(values in proptest::collection::vec((0u64..1000, -1e6f64..1e6, -1e6f64..1e6), 1..30)) {
                let mut population: Vec<(NodeId, AttributeVector)> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (id, a, b) in values {
                    if seen.insert(id) {
                        population.push((NodeId::new(id), vector(&[a, b])));
                    }
                }
                let n = population.len();
                let truth = true_rank_vectors(&population);
                for d in 0..2 {
                    let mut ranks: Vec<f64> = truth.values().map(|v| v[d]).collect();
                    ranks.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    for (i, r) in ranks.iter().enumerate() {
                        prop_assert!((r - (i + 1) as f64 / n as f64).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn single_node_swarm_is_stable() {
        let mut swarm = MultiSwarm::new(vec![(id(1), vector(&[1.0, 2.0]))], 0.5);
        let mut rng = StdRng::seed_from_u64(49);
        swarm.round(4, &mut rng);
        assert_eq!(swarm.nodes()[0].samples(), 0);
        assert_eq!(swarm.nodes()[0].ranks(), vec![0.5, 0.5]);
    }
}
