//! The ordering algorithms: JK and mod-JK (paper §4, Fig. 2).
//!
//! Every node draws a uniform random value `r_i ∈ (0, 1]`. Misplaced
//! neighbor pairs — `(a_j − a_i)(r_j − r_i) < 0` — swap random values until
//! the random order matches the attribute order; each node's slice is then
//! determined by its current random value.
//!
//! The two variants differ *only* in how the swap partner is selected among
//! the misplaced neighbors in the view:
//!
//! * **JK** picks one uniformly at random (the behavior of the original
//!   algorithm of Jelasity & Kermarrec).
//! * **mod-JK** picks the one maximizing the gain `G_{i,j}` of Eq. (1) —
//!   equivalently the score `ℓα_i·ℓρ_j + ℓα_j·ℓρ_i − ℓα_j·ℓρ_j` (Eq. 2) —
//!   computed over the local sequences of `N_i ∪ {i}`.
//!
//! ## Message flow (Fig. 2)
//!
//! ```text
//! i: active    send(REQ, r_i, a_i) → j
//! j: passive   send(ACK, r_j)      → i ; if misplaced: r_j ← r_i
//! i: passive   on ACK: if misplaced (recheck with current r_i): r_i ← r_j
//! ```
//!
//! The recheck on both sides is what makes stale messages *unsuccessful
//! swaps* under concurrency (§4.5.2): if either side's value changed while
//! the message was in flight, the predicate may no longer hold and the swap
//! is abandoned (counted via [`Event::SwapUseless`]).

use dslice_core::attribute::misplaced;
use dslice_core::metrics::{gain_score, local_ranks};
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{Attribute, NodeId, ProtocolMsg, View};
use rand::Rng;
use std::collections::HashMap;

/// Swap-partner selection policy: the one knob distinguishing JK and mod-JK.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwapSelection {
    /// JK: a uniformly random misplaced neighbor.
    RandomMisplaced,
    /// mod-JK: the misplaced neighbor maximizing the gain of Eq. (1).
    MaxGain,
}

impl SwapSelection {
    /// Short label for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            SwapSelection::RandomMisplaced => "jk",
            SwapSelection::MaxGain => "mod-jk",
        }
    }
}

/// Per-partner liveness bookkeeping for the swap-liveness defense.
///
/// A dead or swap-refusing partner (a crashed node, a `Liar`) leaves the
/// proposer's `pending` slot unresolved every time. Without tracking, the
/// gain heuristic re-selects the same maximally-"misplaced" refuser forever
/// — the 95%-useless-swap fixed point. This tracker counts *strikes*
/// (consecutive unresolved proposals per partner) and, once a partner
/// reaches `strike_limit`, bans it from partner selection for `cooldown`
/// activations. Everything is value-determined, so the defense preserves
/// the simulator's byte-determinism.
#[derive(Clone, Debug)]
struct Liveness {
    /// Strikes before a partner is excluded from selection.
    strike_limit: u32,
    /// Activations a banned partner stays excluded.
    cooldown: u64,
    /// Local activation counter (the node's own time base).
    clock: u64,
    /// Consecutive unresolved proposals per partner.
    strikes: HashMap<NodeId, u32>,
    /// Partners excluded from selection until the given activation.
    banned_until: HashMap<NodeId, u64>,
}

impl Liveness {
    fn new(strike_limit: u32, cooldown: u64) -> Self {
        Liveness {
            strike_limit: strike_limit.max(1),
            cooldown: cooldown.max(1),
            clock: 0,
            strikes: HashMap::new(),
            banned_until: HashMap::new(),
        }
    }

    /// Whether `id` is currently excluded from partner selection.
    fn is_banned(&self, id: NodeId) -> bool {
        self.banned_until
            .get(&id)
            .is_some_and(|&until| until > self.clock)
    }

    /// Registers an unresolved proposal against `partner`; bans it once the
    /// strike limit is reached.
    fn strike(&mut self, partner: NodeId) {
        let strikes = self.strikes.entry(partner).or_insert(0);
        *strikes += 1;
        if *strikes >= self.strike_limit {
            self.strikes.remove(&partner);
            self.banned_until
                .insert(partner, self.clock + self.cooldown);
        }
    }

    /// A proposal to `partner` resolved: its slate is wiped clean.
    fn clear(&mut self, partner: NodeId) {
        self.strikes.remove(&partner);
        self.banned_until.remove(&partner);
    }

    /// Advances the activation clock and drops expired bans (bounded maps;
    /// the retain predicate is value-based, so iteration order is moot).
    fn tick(&mut self) {
        self.clock += 1;
        let clock = self.clock;
        self.banned_until.retain(|_, until| *until > clock);
    }
}

/// An ordering-algorithm node: the state of Fig. 2.
#[derive(Clone, Debug)]
pub struct Ordering {
    id: NodeId,
    attribute: Attribute,
    /// The current random value `r_i` — swapped, never redrawn.
    r: f64,
    selection: SwapSelection,
    /// The partner of the in-flight swap proposal, with its attribute
    /// (attributes are immutable, so caching it at send time is safe even if
    /// the view rotates before the ACK returns).
    pending: Option<(NodeId, Attribute)>,
    /// Optional per-partner liveness tracking (the mod-JK-live defense);
    /// `None` for the paper-faithful variants.
    liveness: Option<Liveness>,
}

impl Ordering {
    /// Creates a JK node with initial random value `r ∈ (0, 1]`.
    pub fn jk(id: NodeId, attribute: Attribute, r: f64) -> Self {
        Self::with_selection(id, attribute, r, SwapSelection::RandomMisplaced)
    }

    /// Creates a mod-JK node with initial random value `r ∈ (0, 1]`.
    pub fn mod_jk(id: NodeId, attribute: Attribute, r: f64) -> Self {
        Self::with_selection(id, attribute, r, SwapSelection::MaxGain)
    }

    /// Creates a node with an explicit selection policy.
    pub fn with_selection(
        id: NodeId,
        attribute: Attribute,
        r: f64,
        selection: SwapSelection,
    ) -> Self {
        debug_assert!(r > 0.0 && r <= 1.0, "random value must lie in (0, 1]");
        Ordering {
            id,
            attribute,
            r,
            selection,
            pending: None,
            liveness: None,
        }
    }

    /// Creates a gain-maximizing node with the swap-liveness defense:
    /// a partner whose proposals go unresolved `strike_limit` consecutive
    /// times is excluded from partner selection for `cooldown` activations.
    /// Both knobs are clamped to ≥ 1.
    pub fn mod_jk_live(
        id: NodeId,
        attribute: Attribute,
        r: f64,
        strike_limit: u32,
        cooldown: u64,
    ) -> Self {
        Self::with_selection(id, attribute, r, SwapSelection::MaxGain)
            .with_liveness(strike_limit, cooldown)
    }

    /// Attaches the swap-liveness defense (builder style).
    pub fn with_liveness(mut self, strike_limit: u32, cooldown: u64) -> Self {
        self.liveness = Some(Liveness::new(strike_limit, cooldown));
        self
    }

    /// Whether the swap-liveness defense is active.
    pub fn tracks_liveness(&self) -> bool {
        self.liveness.is_some()
    }

    /// Whether `id` is currently excluded from partner selection by the
    /// liveness defense (always `false` without it).
    pub fn is_partner_banned(&self, id: NodeId) -> bool {
        self.liveness.as_ref().is_some_and(|l| l.is_banned(id))
    }

    /// Resolves a stale `pending` slot at the start of an activation: the
    /// previous proposal's partner never answered (dead, or it refused the
    /// transactional swap), so the slot is abandoned. With liveness
    /// tracking the abandonment is recorded and counted as a strike, and
    /// `true` is returned so the activation can back off; the
    /// paper-faithful variants clear silently (their `pending` was simply
    /// overwritten before, which is the bug this replaces) and return
    /// `false`.
    fn abandon_stale_proposal(&mut self, ctx: &mut dyn Context) -> bool {
        let Some((partner, _)) = self.pending.take() else {
            return false;
        };
        let Some(liveness) = &mut self.liveness else {
            return false;
        };
        ctx.record(Event::SwapAbandoned);
        liveness.strike(partner);
        true
    }

    /// Creates a node drawing its initial random value from `rng`
    /// (line 1 of Fig. 2: `r_i, a random value chosen in (0, 1]`).
    pub fn with_rng<R: Rng + ?Sized>(
        id: NodeId,
        attribute: Attribute,
        selection: SwapSelection,
        rng: &mut R,
    ) -> Self {
        // gen() yields [0, 1); map to (0, 1].
        let r = 1.0 - rng.gen::<f64>();
        Self::with_selection(id, attribute, r, selection)
    }

    /// The current random value.
    pub fn random_value(&self) -> f64 {
        self.r
    }

    /// The selection policy of this node.
    pub fn selection(&self) -> SwapSelection {
        self.selection
    }

    /// Selects the swap partner among the misplaced neighbors of `view`,
    /// per the node's policy. `None` if no neighbor is misplaced.
    fn select_partner(&self, view: &View, ctx: &mut dyn Context) -> Option<NodeId> {
        let misplaced_neighbors: Vec<_> = view
            .iter()
            .filter(|e| misplaced(self.attribute, self.r, e.attribute, e.value))
            .filter(|e| !self.is_partner_banned(e.id))
            .collect();
        if misplaced_neighbors.is_empty() {
            return None;
        }
        match self.selection {
            SwapSelection::RandomMisplaced => {
                let idx = ctx.rng().gen_range(0..misplaced_neighbors.len());
                Some(misplaced_neighbors[idx].id)
            }
            SwapSelection::MaxGain => {
                // Local sequences over N_i ∪ {i} (Fig. 2 lines 4–8).
                let members: Vec<(NodeId, Attribute, f64)> = view
                    .iter()
                    .map(|e| (e.id, e.attribute, e.value))
                    .chain(std::iter::once((self.id, self.attribute, self.r)))
                    .collect();
                let ranks = local_ranks(&members);
                let me = ranks[&self.id];
                misplaced_neighbors
                    .iter()
                    .max_by(|a, b| {
                        gain_score(me, ranks[&a.id])
                            .partial_cmp(&gain_score(me, ranks[&b.id]))
                            .expect("gain scores are finite")
                            // Deterministic tie-break.
                            .then_with(|| b.id.cmp(&a.id))
                    })
                    .map(|e| e.id)
            }
        }
    }
}

impl SliceProtocol for Ordering {
    fn id(&self) -> NodeId {
        self.id
    }

    fn attribute(&self) -> Attribute {
        self.attribute
    }

    fn estimate(&self) -> f64 {
        self.r
    }

    /// Fig. 2 lines 2–14: pick the partner, propose a swap.
    ///
    /// The swap itself completes in the passive threads; under the atomic
    /// cycle model (messages delivered immediately) the whole exchange
    /// happens within this step.
    fn on_active(&mut self, view: &View, ctx: &mut dyn Context) {
        if let Some(liveness) = &mut self.liveness {
            liveness.tick();
        }
        // A proposal still pending from an earlier activation never
        // resolved — clear it (and charge the partner when tracking).
        // A liveness-tracking node then *backs off* for this activation:
        // it just learned a partner is unresponsive, and blindly
        // re-proposing into the same (possibly adversarial) neighborhood
        // is exactly the wedge this defense removes. One activation of
        // silence costs a converging node almost nothing; a wedged node
        // converts an infinite useless-swap stream into a ban.
        if self.abandon_stale_proposal(ctx) {
            return;
        }
        let Some(partner) = self.select_partner(view, ctx) else {
            return;
        };
        let partner_attr = view.get(partner).expect("partner from view").attribute;
        self.pending = Some((partner, partner_attr));
        ctx.record(Event::SwapProposed);
        ctx.send(
            partner,
            ProtocolMsg::SwapReq {
                from: self.id,
                r: self.r,
                a: self.attribute,
            },
        );
    }

    fn on_message(&mut self, _view: &View, msg: ProtocolMsg, ctx: &mut dyn Context) {
        match msg {
            // Fig. 2 lines 15–19 (passive thread at j).
            ProtocolMsg::SwapReq {
                from,
                r: r_i,
                a: a_i,
            } => {
                ctx.send(
                    from,
                    ProtocolMsg::SwapAck {
                        from: self.id,
                        r: self.r,
                    },
                );
                if misplaced(self.attribute, self.r, a_i, r_i) {
                    self.r = r_i;
                    ctx.record(Event::SwapApplied);
                } else {
                    // The proposal was computed against a stale snapshot of
                    // our value: an unsuccessful swap (§4.5.2).
                    ctx.record(Event::SwapUseless);
                }
            }
            // Fig. 2 lines 10–14 (completion at the initiator).
            ProtocolMsg::SwapAck { from, r: r_j } => {
                let Some((expected, a_j)) = self.pending.take() else {
                    return; // No proposal outstanding; stray ACK.
                };
                if expected != from {
                    self.pending = Some((expected, a_j));
                    return;
                }
                // The partner answered: it is live, whatever the outcome.
                if let Some(liveness) = &mut self.liveness {
                    liveness.clear(from);
                }
                if misplaced(self.attribute, self.r, a_j, r_j) {
                    self.r = r_j;
                    ctx.record(Event::SwapApplied);
                } else {
                    ctx.record(Event::SwapUseless);
                }
            }
            // Ordering nodes ignore ranking/membership traffic.
            _ => {}
        }
    }

    /// Transactional swap (simulator delivery semantics, §4.5.2): adopt
    /// `other_value` and surrender the current value iff the pair is still
    /// misplaced at delivery time.
    fn try_atomic_swap(&mut self, other_attr: Attribute, other_value: f64) -> Option<f64> {
        if misplaced(self.attribute, self.r, other_attr, other_value) {
            let old = self.r;
            self.r = other_value;
            Some(old)
        } else {
            None
        }
    }

    /// The simulator calls this when the partner *accepted* the
    /// transactional swap — the pending proposal resolved successfully, so
    /// the slot clears and the partner's liveness slate is wiped.
    fn adopt_value(&mut self, value: f64) {
        self.r = value;
        if let Some((partner, _)) = self.pending.take() {
            if let Some(liveness) = &mut self.liveness {
                liveness.clear(partner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::protocol::MockContext;
    use dslice_core::{Partition, ViewEntry};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn view_of(entries: &[(u64, f64, f64)]) -> View {
        let mut v = View::new(entries.len().max(1)).unwrap();
        for &(id, a, r) in entries {
            v.insert(ViewEntry::new(NodeId::new(id), attr(a), r));
        }
        v
    }

    fn ctx() -> MockContext<StdRng> {
        MockContext::new(StdRng::seed_from_u64(42))
    }

    /// Runs one atomic cycle over a complete graph of nodes: each node in
    /// turn recomputes its (complete) view from the others' live values,
    /// runs the active step, and every message is delivered immediately —
    /// the paper's cycle-based simulation model in miniature.
    fn atomic_cycle(nodes: &mut [Ordering]) {
        let empty = view_of(&[]);
        for idx in 0..nodes.len() {
            let view = {
                let me = &nodes[idx];
                let others: Vec<(u64, f64, f64)> = nodes
                    .iter()
                    .filter(|n| n.id() != me.id())
                    .map(|n| (n.id().as_u64(), n.attribute().value(), n.random_value()))
                    .collect();
                view_of(&others)
            };
            let mut c = ctx();
            nodes[idx].on_active(&view, &mut c);
            // Deliver messages (and the replies they trigger) immediately.
            let mut queue = c.take_sent();
            while let Some((to, msg)) = queue.pop() {
                let target = nodes.iter_mut().find(|n| n.id() == to).unwrap();
                target.on_message(&empty, msg, &mut c);
                queue.extend(c.take_sent());
            }
        }
    }

    #[test]
    fn paper_example_converges_to_sorted_values() {
        // §4.1: a = (50, 120, 25), r = (0.85, 0.1, 0.35) must end as
        // r = (0.35, 0.85, 0.1).
        let mut nodes = vec![
            Ordering::mod_jk(NodeId::new(1), attr(50.0), 0.85),
            Ordering::mod_jk(NodeId::new(2), attr(120.0), 0.10),
            Ordering::mod_jk(NodeId::new(3), attr(25.0), 0.35),
        ];
        for _ in 0..6 {
            atomic_cycle(&mut nodes);
        }
        assert_eq!(nodes[0].random_value(), 0.35);
        assert_eq!(nodes[1].random_value(), 0.85);
        assert_eq!(nodes[2].random_value(), 0.10);
    }

    #[test]
    fn jk_also_converges_on_complete_views() {
        let mut nodes: Vec<Ordering> = (0..8)
            .map(|i| {
                Ordering::jk(
                    NodeId::new(i),
                    attr(i as f64 * 10.0),
                    // Reversed initial values: maximal disorder.
                    1.0 - (i as f64 + 1.0) / 10.0,
                )
            })
            .collect();
        for _ in 0..40 {
            atomic_cycle(&mut nodes);
        }
        // Fully sorted: values increase with the attribute.
        for w in nodes.windows(2) {
            assert!(
                w[0].random_value() < w[1].random_value(),
                "values must end sorted along attributes"
            );
        }
    }

    #[test]
    fn no_message_when_no_neighbor_misplaced() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.5);
        // Neighbor with larger attribute and larger value: ordered.
        let view = view_of(&[(2, 120.0, 0.9)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert!(c.sent.is_empty());
        assert_eq!(c.count(Event::SwapProposed), 0);
    }

    #[test]
    fn jk_proposes_to_some_misplaced_neighbor() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.9);
        // Two misplaced (larger attribute, smaller value), one ordered.
        let view = view_of(&[(2, 120.0, 0.1), (3, 100.0, 0.2), (4, 10.0, 0.05)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert_eq!(c.sent.len(), 1);
        let to = c.sent[0].0.as_u64();
        assert!(to == 2 || to == 3, "partner must be misplaced, got {to}");
    }

    #[test]
    fn mod_jk_picks_the_gain_maximizing_partner() {
        // Node 1: a = 50, r = 0.9. Neighbors: node 2 (a=120, r=0.1) is far
        // more misplaced than node 3 (a=60, r=0.85). The gain heuristic must
        // pick node 2 (swapping with the most-displaced pair gains most).
        let mut node = Ordering::mod_jk(NodeId::new(1), attr(50.0), 0.9);
        let view = view_of(&[(2, 120.0, 0.1), (3, 60.0, 0.85)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert_eq!(c.sent.len(), 1);
        assert_eq!(c.sent[0].0, NodeId::new(2));
    }

    #[test]
    fn swap_req_applies_when_misplaced_and_acks_old_value() {
        let mut node = Ordering::jk(NodeId::new(2), attr(120.0), 0.1);
        let view = view_of(&[]);
        let mut c = ctx();
        node.on_message(
            &view,
            ProtocolMsg::SwapReq {
                from: NodeId::new(1),
                r: 0.85,
                a: attr(50.0),
            },
            &mut c,
        );
        // ACK carries the pre-swap value 0.1.
        assert!(matches!(
            c.sent[0].1,
            ProtocolMsg::SwapAck { r, .. } if r == 0.1
        ));
        assert_eq!(node.random_value(), 0.85);
        assert_eq!(c.count(Event::SwapApplied), 1);
    }

    #[test]
    fn swap_req_rejected_when_stale() {
        // Node's value moved such that the predicate no longer holds:
        // unsuccessful swap, value unchanged, ACK still sent.
        let mut node = Ordering::jk(NodeId::new(2), attr(120.0), 0.95);
        let view = view_of(&[]);
        let mut c = ctx();
        node.on_message(
            &view,
            ProtocolMsg::SwapReq {
                from: NodeId::new(1),
                r: 0.85,
                a: attr(50.0),
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.95);
        assert_eq!(c.count(Event::SwapUseless), 1);
        assert_eq!(c.sent.len(), 1, "ACK is sent regardless");
    }

    #[test]
    fn ack_applies_with_cached_attribute() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c); // proposes to 2, pending set
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: NodeId::new(2),
                r: 0.1,
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.1);
        assert_eq!(c.count(Event::SwapApplied), 1);
    }

    #[test]
    fn ack_rejected_when_own_value_changed_meanwhile() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        // Meanwhile another REQ swapped our value to something small.
        node.on_message(
            &view,
            ProtocolMsg::SwapReq {
                from: NodeId::new(9),
                r: 0.05,
                a: attr(200.0),
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.05);
        // Now the original ACK arrives: 0.1 vs our 0.05 with a_j = 120 > 50
        // → (a_j - a_i)(r_j - r_i) = (+)(+) ≥ 0: no longer misplaced.
        let events_before = c.count(Event::SwapUseless);
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: NodeId::new(2),
                r: 0.1,
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.05, "stale ACK must not apply");
        assert_eq!(c.count(Event::SwapUseless), events_before + 1);
    }

    #[test]
    fn stray_ack_is_ignored() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let view = view_of(&[]);
        let mut c = ctx();
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: NodeId::new(7),
                r: 0.2,
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.85);
        assert!(c.events.is_empty());
    }

    #[test]
    fn ack_from_unexpected_sender_preserves_pending() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c); // pending = node 2
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: NodeId::new(3),
                r: 0.01,
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.85, "ACK from wrong sender ignored");
        // The genuine ACK still completes.
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: NodeId::new(2),
                r: 0.1,
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.1);
    }

    #[test]
    fn update_messages_are_ignored_by_ordering_nodes() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let view = view_of(&[]);
        let mut c = ctx();
        node.on_message(
            &view,
            ProtocolMsg::Update {
                from: NodeId::new(2),
                a: attr(10.0),
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.85);
        assert!(c.sent.is_empty());
    }

    #[test]
    fn slice_follows_random_value() {
        let part = Partition::equal(10).unwrap();
        let node = Ordering::jk(NodeId::new(1), attr(5.0), 0.42);
        assert_eq!(node.slice(&part).as_usize(), 4);
    }

    #[test]
    fn with_rng_draws_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let node = Ordering::with_rng(
                NodeId::new(1),
                attr(1.0),
                SwapSelection::RandomMisplaced,
                &mut rng,
            );
            assert!(node.random_value() > 0.0 && node.random_value() <= 1.0);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SwapSelection::RandomMisplaced.label(), "jk");
        assert_eq!(SwapSelection::MaxGain.label(), "mod-jk");
    }

    #[test]
    fn atomic_swap_applies_only_when_misplaced() {
        let mut node = Ordering::mod_jk(NodeId::new(1), attr(50.0), 0.85);
        // Proposer with larger attribute but smaller value: misplaced.
        let taken = node.try_atomic_swap(attr(120.0), 0.10);
        assert_eq!(taken, Some(0.85), "callee surrenders its pre-swap value");
        assert_eq!(node.random_value(), 0.10, "callee adopted the proposal");
        // Now the pair would be ordered: a second identical proposal aborts.
        let again = node.try_atomic_swap(attr(120.0), 0.85);
        assert_eq!(again, None);
        assert_eq!(node.random_value(), 0.10, "aborted swap changes nothing");
    }

    #[test]
    fn adopt_value_overwrites() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        node.adopt_value(0.33);
        assert_eq!(node.random_value(), 0.33);
    }

    #[test]
    fn stale_pending_is_cleared_at_next_activation() {
        let mut node = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c); // proposes to 2
                                       // Next activation: the view rotated, nobody is misplaced, and 2
                                       // never answered. The dangling proposal must not linger.
        let ordered = view_of(&[(3, 120.0, 0.9)]);
        node.on_active(&ordered, &mut c);
        // 2's ACK finally arrives — but the proposal was abandoned.
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: NodeId::new(2),
                r: 0.1,
            },
            &mut c,
        );
        assert_eq!(
            node.random_value(),
            0.85,
            "an abandoned proposal must not complete"
        );
        assert_eq!(
            c.count(Event::SwapAbandoned),
            0,
            "paper-faithful variants abandon silently"
        );
    }

    #[test]
    fn liveness_bans_refusing_partner_after_strikes() {
        let mut node = Ordering::mod_jk_live(NodeId::new(1), attr(50.0), 0.9, 2, 5);
        assert!(node.tracks_liveness());
        let refuser = NodeId::new(2);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c); // proposal #1 (never answered)
        node.on_active(&view, &mut c); // abandon #1 → strike 1, back off
        assert_eq!(c.count(Event::SwapAbandoned), 1);
        assert_eq!(c.count(Event::SwapProposed), 1, "backoff: no re-proposal");
        assert!(!node.is_partner_banned(refuser));
        node.on_active(&view, &mut c); // proposal #2
        node.on_active(&view, &mut c); // abandon #2 → strike 2 → ban
        assert_eq!(c.count(Event::SwapAbandoned), 2);
        assert!(node.is_partner_banned(refuser));
        assert_eq!(
            c.count(Event::SwapProposed),
            2,
            "a banned partner draws no further proposals"
        );
        // The ban expires after `cooldown` activations (banned at clock 4,
        // excluded through clock 8, free again at clock 9).
        for _ in 0..4 {
            node.on_active(&view, &mut c);
            assert!(node.is_partner_banned(refuser));
        }
        node.on_active(&view, &mut c);
        assert!(!node.is_partner_banned(refuser), "cooldown must expire");
        assert_eq!(c.count(Event::SwapProposed), 3, "selection resumes");
    }

    #[test]
    fn successful_swap_clears_strikes_and_pending() {
        let mut node = Ordering::mod_jk_live(NodeId::new(1), attr(50.0), 0.9, 2, 5);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c); // proposal #1 unresolved
        node.on_active(&view, &mut c); // abandon → strike 1, back off
        node.on_active(&view, &mut c); // proposal #2
        assert_eq!(c.count(Event::SwapAbandoned), 1);
        // This time the partner accepts (the simulator's transactional
        // path): pending resolves, the strike slate wipes.
        node.adopt_value(0.1);
        assert_eq!(node.random_value(), 0.1);
        let ordered = view_of(&[(3, 120.0, 0.95)]);
        node.on_active(&ordered, &mut c);
        assert_eq!(
            c.count(Event::SwapAbandoned),
            1,
            "a resolved proposal charges no strike"
        );
        assert!(!node.is_partner_banned(NodeId::new(2)));
    }

    #[test]
    fn ack_resolution_clears_strikes_too() {
        // The raw Fig. 2 message path (network runtime): an answering
        // partner is live whatever the swap outcome — one completed
        // exchange must wipe the partner's accumulated strikes.
        let mut node = Ordering::mod_jk_live(NodeId::new(1), attr(50.0), 0.9, 2, 5);
        let refuser = NodeId::new(2);
        let view = view_of(&[(2, 120.0, 0.1)]);
        let mut c = ctx();
        node.on_active(&view, &mut c); // proposal #1
        node.on_active(&view, &mut c); // abandon → strike 1, back off
        node.on_active(&view, &mut c); // proposal #2
        node.on_message(
            &view,
            ProtocolMsg::SwapAck {
                from: refuser,
                r: 0.1,
            },
            &mut c,
        );
        assert_eq!(node.random_value(), 0.1, "the ACK completed the swap");
        // Two more unresolved proposals: were the earlier strike still on
        // the books, the second would be strike #3 — but the slate was
        // wiped, so the ban lands exactly at two *fresh* strikes.
        let again = view_of(&[(2, 120.0, 0.05)]);
        node.on_active(&again, &mut c); // proposal #3
        node.on_active(&again, &mut c); // abandon → fresh strike 1
        assert!(
            !node.is_partner_banned(refuser),
            "the resolved exchange must have wiped the first strike"
        );
        node.on_active(&again, &mut c); // proposal #4
        node.on_active(&again, &mut c); // abandon → fresh strike 2 → ban
        assert!(node.is_partner_banned(refuser));
        assert_eq!(c.count(Event::SwapAbandoned), 3);
    }

    #[test]
    fn liveness_defense_unwedges_against_a_refuser() {
        // One honest node, one permanent swap-refuser that looks maximally
        // attractive to the gain heuristic, one honest partner. Plain
        // mod-JK proposes to the refuser forever; the live variant bans it
        // and completes the real swap.
        let refuser = (2u64, 120.0, 0.05); // huge attribute, tiny value
        let honest = (3u64, 100.0, 0.1);
        let view = view_of(&[refuser, honest]);
        let mut c = ctx();

        let mut plain = Ordering::mod_jk(NodeId::new(1), attr(50.0), 0.9);
        for _ in 0..10 {
            plain.on_active(&view, &mut c);
        }
        let plain_targets: Vec<u64> = c.sent.iter().map(|(to, _)| to.as_u64()).collect();
        assert!(
            plain_targets.iter().all(|&t| t == 2),
            "plain mod-JK stays wedged on the refuser: {plain_targets:?}"
        );

        let mut c = ctx();
        let mut live = Ordering::mod_jk_live(NodeId::new(1), attr(50.0), 0.9, 2, 16);
        for _ in 0..6 {
            live.on_active(&view, &mut c);
            // The refuser never answers; the honest partner's ACK (with its
            // true value) completes a real swap once selected.
            if let Some((to, ProtocolMsg::SwapReq { .. })) = c.sent.last() {
                if to.as_u64() == 3 {
                    live.on_message(
                        &view,
                        ProtocolMsg::SwapAck {
                            from: NodeId::new(3),
                            r: 0.1,
                        },
                        &mut c,
                    );
                    break;
                }
            }
        }
        assert_eq!(
            live.random_value(),
            0.1,
            "the live variant must reach the honest partner and swap"
        );
    }

    proptest! {
        #[test]
        fn liveness_bans_exactly_at_strike_limit_and_frees_at_cooldown_expiry(
            strike_limit in 1u32..5,
            cooldown in 1u64..20,
        ) {
            // A permanently refusing partner: each (propose, abandon)
            // activation pair charges exactly one strike. The ban must land
            // exactly at strike `strike_limit` — not one earlier — and
            // expire exactly `cooldown` activations later — not one later.
            let refuser = NodeId::new(2);
            let view = view_of(&[(2, 120.0, 0.1)]);
            let mut c = ctx();
            let mut node = Ordering::mod_jk_live(
                NodeId::new(1), attr(50.0), 0.9, strike_limit, cooldown,
            );
            for s in 1..=strike_limit {
                prop_assert!(!node.is_partner_banned(refuser));
                node.on_active(&view, &mut c); // propose
                node.on_active(&view, &mut c); // abandon → strike s
                if s < strike_limit {
                    prop_assert!(
                        !node.is_partner_banned(refuser),
                        "strike {}/{} must not ban yet", s, strike_limit
                    );
                }
            }
            prop_assert!(
                node.is_partner_banned(refuser),
                "ban must land exactly at strike {}", strike_limit
            );
            prop_assert_eq!(
                c.count(Event::SwapAbandoned), strike_limit as usize
            );
            // Banned for the next cooldown−1 activations...
            for k in 1..cooldown {
                node.on_active(&view, &mut c);
                prop_assert!(
                    node.is_partner_banned(refuser),
                    "must stay banned at {}/{}", k, cooldown
                );
            }
            // ...and free exactly on the cooldown-th, where selection
            // resumes within the same activation.
            node.on_active(&view, &mut c);
            prop_assert!(
                !node.is_partner_banned(refuser),
                "ban must expire exactly at cooldown {}", cooldown
            );
            prop_assert_eq!(
                c.count(Event::SwapProposed), strike_limit as usize + 1
            );
        }
    }

    #[test]
    fn atomic_swap_pair_is_conservative() {
        // A full transactional exchange between two nodes conserves the
        // value pair and orders it.
        let mut i = Ordering::jk(NodeId::new(1), attr(50.0), 0.85);
        let mut j = Ordering::jk(NodeId::new(2), attr(120.0), 0.10);
        if let Some(pre) = j.try_atomic_swap(i.attribute(), i.random_value()) {
            i.adopt_value(pre);
        }
        assert_eq!(i.random_value(), 0.10);
        assert_eq!(j.random_value(), 0.85);
        assert!(!misplaced(
            i.attribute(),
            i.random_value(),
            j.attribute(),
            j.random_value()
        ));
    }
}
