//! The ranking algorithm (paper §5, Fig. 5).
//!
//! Instead of sorting random values, each node *estimates its rank* along the
//! attribute axis from the attribute values it observes: the estimate is the
//! fraction of observed values that were ≤ its own (`ℓ_i / g_i`). Gossip
//! provides the sample stream:
//!
//! * every cycle the node scans its (freshly shuffled) view and folds every
//!   neighbor's attribute into the estimate (Fig. 5 lines 5–11);
//! * it then pushes its own attribute to two neighbors (lines 12–14): `j1`,
//!   the neighbor whose published rank estimate is **closest to a slice
//!   boundary** — boundary nodes need the most samples (Theorem 5.1) — and
//!   `j2`, a uniformly random neighbor;
//! * received `UPD` messages are folded in on arrival (lines 17–21).
//!
//! Unlike the ordering algorithms, communication is one-way and payloads
//! (attribute values) never go stale, so concurrency cannot produce useless
//! messages (§5, "Concurrency side-effect") — and the estimate keeps
//! sharpening forever instead of plateauing at the accuracy of the initial
//! random spread.
//!
//! The generic parameter selects the accumulator: [`Ranking`] uses the
//! unbounded counters of Fig. 5, [`SlidingRanking`] the sliding-window
//! variant of §5.3.4.

use crate::estimator::{CounterEstimator, DecayEstimator, RankEstimator, WindowEstimator};
use crate::window::ValueWindow;
use dslice_core::protocol::{Context, Event, SliceProtocol};
use dslice_core::{Attribute, NodeId, Partition, ProtocolMsg, View};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the two `UPD` targets of Fig. 5 lines 12–14 are chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum Targeting {
    /// The paper's heuristic: `j1` = the neighbor whose published rank
    /// estimate is closest to a slice boundary (boundary nodes need the
    /// most samples, Theorem 5.1), `j2` = uniformly random.
    #[default]
    BoundaryPlusRandom,
    /// Ablation: both targets uniformly random. Isolates the value of the
    /// boundary bias (`bench/ablations` quantifies the difference).
    TwoRandom,
}

/// Outlier-robust sample admission for the ranking family.
///
/// A `Liar` poisons the sample stream by inflating its outgoing attribute
/// values far beyond the honest range, dragging every honest estimate
/// toward 0 without bound. The filter keeps a [`ValueWindow`] of the raw
/// attribute values recently offered to this node and judges each new
/// sample against order statistics of that window, via one or both of two
/// tests:
///
/// * **Tukey fences** ([`new`](RobustFilter::new) /
///   [`with_fence`](RobustFilter::with_fence)): reject a sample outside
///   `(q1 − k·IQR, q3 + k·IQR)` — a bounded-influence test: quartiles
///   tolerate up to a quarter of upper-tail contamination, so a minority of
///   naive liars cannot move the fences enough to smuggle their claims
///   through. An *adaptive* attacker, however, can aim just inside the
///   fences and still be admitted.
/// * **Symmetric trimming** ([`trimmed`](RobustFilter::trimmed)): reject a
///   sample outside the `[pct, 1 − pct]` quantile band of the window — the
///   admission-side equivalent of a trimmed mean over the window's order
///   statistics. Any coordinated minority smaller than `pct` of the stream
///   lands in the trimmed tail *wherever* it aims, at the cost of also
///   discarding the honest extremes (the ranking estimator rescales its raw
///   band ratio to undo that systematic cost — see
///   [`SliceProtocol::estimate`] on [`RankingProtocol`]).
///
/// Each test alone has a known hole. The fence admits fence-margin poison
/// by construction. Pure trimming rejects such poison from the *estimate*,
/// but the poison still sits in the window and drags the naive
/// whole-window `quantile(1 − pct)` cut upward in honest terms — the
/// admitted honest band shifts and every debiased estimate deflates by
/// ≈ `ε·r` for a poison stream fraction `ε`, which costs as much accuracy
/// as admitting the poison outright.
///
/// [`fenced_trimmed`](RobustFilter::fenced_trimmed) composes both and
/// closes that hole: a sample must pass the outer fences *and* sit inside
/// trim cuts computed over the window's inner-fence inliers
/// ([`ValueWindow::fenced_trim_cuts`] with
/// [`INNER_FENCE_RATIO`](RobustFilter::INNER_FENCE_RATIO) · `k`), so
/// fence-margin poison can neither enter the estimate nor steer the cuts.
///
/// Rejected samples are still *remembered* in the window (only excluded
/// from the estimate): the window must keep tracking the genuine stream so
/// honest distribution shifts widen the fences and re-admit the new range
/// within one window turnover. Filtering activates only once the window has
/// filled — before that there is no spread to judge against.
#[derive(Clone, Debug)]
pub struct RobustFilter {
    window: ValueWindow,
    /// Tukey-fence multiplier; `None` disables the fence test.
    fence_k: Option<f64>,
    /// Symmetric trim fraction in `(0, 0.5)`; `None` disables trimming.
    trim_pct: Option<f64>,
}

impl RobustFilter {
    /// Default Tukey multiplier: `k = 3` is the classical "far outlier"
    /// fence — wide enough that honest heavy-tailed streams (Pareto
    /// attributes) pass, tight enough to reject 10× inflation.
    pub const DEFAULT_FENCE_K: f64 = 3.0;

    /// Ratio of the admission fence multiplier used for the *inner* fences
    /// that sanitize the trim-cut evidence base (see
    /// [`ValueWindow::fenced_trim_cuts`]): with the default outer `k = 3`
    /// this is Tukey's classical inner fence at `1.5 × IQR`. Mis-excluding
    /// an honest tail sample from cut estimation only nudges the cuts;
    /// including fence-margin poison shifts them systematically.
    pub const INNER_FENCE_RATIO: f64 = 0.5;

    /// Creates a fence-only filter remembering the freshest `window` raw
    /// samples, with the default fence multiplier.
    pub fn new(window: usize) -> Self {
        Self::with_fence(window, Self::DEFAULT_FENCE_K)
    }

    /// Creates a fence-only filter with an explicit fence multiplier
    /// `k > 0`.
    ///
    /// # Panics
    /// Panics if `fence_k` is not positive and finite, or `window` is zero.
    pub fn with_fence(window: usize, fence_k: f64) -> Self {
        assert!(
            fence_k.is_finite() && fence_k > 0.0,
            "fence multiplier must be positive and finite, got {fence_k}"
        );
        RobustFilter {
            window: ValueWindow::new(window),
            fence_k: Some(fence_k),
            trim_pct: None,
        }
    }

    /// Creates a trim-only filter: admitted samples are those inside the
    /// `[pct, 1 − pct]` quantile band of the remembered window.
    ///
    /// # Panics
    /// Panics if `pct` is not strictly inside `(0, 0.5)`, or `window` is
    /// zero.
    pub fn trimmed(window: usize, pct: f64) -> Self {
        assert!(
            pct.is_finite() && pct > 0.0 && pct < 0.5,
            "trim fraction must lie strictly inside (0, 0.5), got {pct}"
        );
        RobustFilter {
            window: ValueWindow::new(window),
            fence_k: None,
            trim_pct: Some(pct),
        }
    }

    /// Creates the composed defense: a sample must pass the default Tukey
    /// fences *and* fall inside the `[pct, 1 − pct]` trim band.
    ///
    /// # Panics
    /// Panics if `pct` is not strictly inside `(0, 0.5)`, or `window` is
    /// zero.
    pub fn fenced_trimmed(window: usize, pct: f64) -> Self {
        let mut filter = Self::trimmed(window, pct);
        filter.fence_k = Some(Self::DEFAULT_FENCE_K);
        filter
    }

    /// Number of raw samples the filter remembers.
    pub fn window_capacity(&self) -> usize {
        self.window.capacity()
    }

    /// The symmetric trim fraction, if trimming is enabled.
    pub fn trim_fraction(&self) -> Option<f64> {
        self.trim_pct
    }

    /// Whether the Tukey-fence test is enabled.
    pub fn has_fence(&self) -> bool {
        self.fence_k.is_some()
    }

    /// Judges `value` against the enabled tests over the remembered stream,
    /// then remembers it either way. Returns `false` iff the sample is an
    /// outlier and should not enter the estimate.
    pub fn admit(&mut self, value: f64) -> bool {
        let admitted = if self.window.is_full() {
            let fence_ok = match self.fence_k.and_then(|k| self.window.tukey_fences(k)) {
                Some((lo, hi)) => value >= lo && value <= hi,
                // Fence disabled, or zero spread: no basis to reject.
                None => true,
            };
            let trim_ok = match self.trim_pct {
                Some(pct) => {
                    // Composed with a fence, the trim cuts are computed over
                    // the window's *inner-fence* inliers (k/2, Tukey's
                    // classical inner/outer split). A naive whole-window
                    // quantile is itself poisonable: fence-margin samples
                    // sitting in the window drag `quantile(1 − pct)` upward
                    // in honest terms, deflating every debiased estimate by
                    // ≈ ε·r even though the poison never enters the
                    // estimate. Sanitizing the evidence base closes that
                    // channel; admission keeps the forgiving outer fences.
                    let (lo, hi) = match self.fence_k {
                        Some(k) => self
                            .window
                            .fenced_trim_cuts(k * Self::INNER_FENCE_RATIO, pct)
                            .expect("window is full"),
                        None => (
                            self.window.quantile(pct).expect("window is full"),
                            self.window.quantile(1.0 - pct).expect("window is full"),
                        ),
                    };
                    value >= lo && value <= hi
                }
                None => true,
            };
            fence_ok && trim_ok
        } else {
            true // warmup: the window has not seen a full stream yet
        };
        self.window.push(value);
        admitted
    }
}

/// A ranking-algorithm node, generic over the sample accumulator.
#[derive(Clone, Debug)]
pub struct RankingProtocol<E: RankEstimator> {
    id: NodeId,
    attribute: Attribute,
    /// Initial estimate used before the first sample (Fig. 5 line 1 draws a
    /// random value in `(0, 1]`).
    initial: f64,
    estimator: E,
    partition: Partition,
    targeting: Targeting,
    /// Optional outlier-robust sample admission (off for the paper-faithful
    /// variants; every sample is absorbed unconditionally when `None`).
    filter: Option<RobustFilter>,
}

/// The ranking algorithm with unbounded counters (Fig. 5).
pub type Ranking = RankingProtocol<CounterEstimator>;

/// The sliding-window ranking algorithm (§5.3.4).
pub type SlidingRanking = RankingProtocol<WindowEstimator>;

/// The ranking algorithm with exponential sample aging.
pub type DecayRanking = RankingProtocol<DecayEstimator>;

impl Ranking {
    /// Creates a counter-based ranking node. `initial` is the provisional
    /// estimate before any sample arrives, drawn in `(0, 1]`.
    pub fn new(id: NodeId, attribute: Attribute, initial: f64, partition: Partition) -> Self {
        RankingProtocol {
            id,
            attribute,
            initial,
            estimator: CounterEstimator::new(),
            partition,
            targeting: Targeting::default(),
            filter: None,
        }
    }

    /// Creates a counter-based ranking node with an RNG-drawn initial value.
    pub fn with_rng<R: Rng + ?Sized>(
        id: NodeId,
        attribute: Attribute,
        partition: Partition,
        rng: &mut R,
    ) -> Self {
        let initial = 1.0 - rng.gen::<f64>();
        Self::new(id, attribute, initial, partition)
    }
}

impl SlidingRanking {
    /// Creates a sliding-window ranking node retaining the freshest
    /// `window` samples.
    pub fn with_window(
        id: NodeId,
        attribute: Attribute,
        initial: f64,
        partition: Partition,
        window: usize,
    ) -> Self {
        RankingProtocol {
            id,
            attribute,
            initial,
            estimator: WindowEstimator::new(window),
            partition,
            targeting: Targeting::default(),
            filter: None,
        }
    }
}

impl DecayRanking {
    /// Creates a sample-aging ranking node with decay factor
    /// `lambda ∈ (0, 1)` (see [`DecayEstimator`]).
    pub fn with_lambda(
        id: NodeId,
        attribute: Attribute,
        initial: f64,
        partition: Partition,
        lambda: f64,
    ) -> Self {
        RankingProtocol {
            id,
            attribute,
            initial,
            estimator: DecayEstimator::new(lambda),
            partition,
            targeting: Targeting::default(),
            filter: None,
        }
    }
}

impl<E: RankEstimator> RankingProtocol<E> {
    /// Overrides the `UPD` target-selection policy (builder style).
    pub fn with_targeting(mut self, targeting: Targeting) -> Self {
        self.targeting = targeting;
        self
    }

    /// Attaches outlier-robust sample admission (builder style): samples
    /// outside the filter's fences are rejected instead of absorbed.
    pub fn with_filter(mut self, filter: RobustFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// The robust-admission filter, if one is attached.
    pub fn filter(&self) -> Option<&RobustFilter> {
        self.filter.as_ref()
    }

    /// The target-selection policy in use.
    pub fn targeting(&self) -> Targeting {
        self.targeting
    }

    /// The number of samples currently contributing to the estimate.
    pub fn samples(&self) -> usize {
        self.estimator.samples()
    }

    /// Read access to the accumulator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// The partition this node slices against.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Folds one observed attribute value into the estimate
    /// (lines 6–7 / 18–19 of Fig. 5: `if a_j ≤ a_i then ℓ_i ← ℓ_i + 1`).
    ///
    /// Both sample channels — view scans in `on_active` and received `UPD`
    /// messages — funnel through here, so an attached [`RobustFilter`]
    /// covers every poisoning path.
    fn observe(&mut self, a: Attribute, ctx: &mut dyn Context) {
        if let Some(filter) = &mut self.filter {
            if !filter.admit(a.value()) {
                ctx.record(Event::SampleRejected);
                return;
            }
        }
        self.estimator.absorb(a <= self.attribute);
        ctx.record(Event::SampleAbsorbed);
    }
}

impl<E: RankEstimator> SliceProtocol for RankingProtocol<E> {
    fn id(&self) -> NodeId {
        self.id
    }

    fn attribute(&self) -> Attribute {
        self.attribute
    }

    /// `r_i ← ℓ_i / g_i` (line 15), falling back to the initial random value
    /// before the first sample.
    ///
    /// Under a trim filter the raw ratio is a *band* position: admitted
    /// samples span only the `[pct, 1 − pct]` quantile band of the stream,
    /// so a node seeing fraction `raw` of the band below itself sits at
    /// true rank `pct + raw·(1 − 2·pct)`. The rescaling undoes the
    /// systematic bias symmetric trimming would otherwise impose on nodes
    /// away from the median (its cost: estimates resolve no finer than
    /// `pct` at the extremes, so keep `pct` below half the narrowest slice
    /// width).
    fn estimate(&self) -> f64 {
        let Some(raw) = self.estimator.estimate() else {
            return self.initial;
        };
        match self.filter.as_ref().and_then(|f| f.trim_fraction()) {
            Some(pct) => pct + raw * (1.0 - 2.0 * pct),
            None => raw,
        }
    }

    /// Fig. 5 lines 2–16.
    fn on_active(&mut self, view: &View, ctx: &mut dyn Context) {
        // Lines 5–11: absorb every neighbor's attribute; track the neighbor
        // whose *published rank estimate* is closest to a slice boundary.
        let mut boundary: Option<(NodeId, f64)> = None;
        for entry in view.iter() {
            self.observe(entry.attribute, ctx);
            let dist = self.partition.boundary_distance(entry.value);
            match boundary {
                Some((_, best)) if dist >= best => {}
                _ => boundary = Some((entry.id, dist)),
            }
        }
        let j1 = match self.targeting {
            Targeting::BoundaryPlusRandom => boundary.map(|(id, _)| id),
            Targeting::TwoRandom => view.random(ctx.rng()).map(|e| e.id),
        };
        // Line 12: a uniformly random second target.
        let j2 = view.random(ctx.rng()).map(|e| e.id);

        // Lines 13–14: one-way attribute pushes.
        for target in [j1, j2].into_iter().flatten() {
            ctx.send(
                target,
                ProtocolMsg::Update {
                    from: self.id,
                    a: self.attribute,
                },
            );
            ctx.record(Event::UpdateSent);
        }
    }

    fn set_partition(&mut self, partition: &Partition) {
        self.partition = partition.clone();
    }

    /// Fig. 5 lines 17–21.
    fn on_message(&mut self, _view: &View, msg: ProtocolMsg, ctx: &mut dyn Context) {
        // A ranking node reacts only to UPD samples; swap proposals are
        // ignored (the families are not mixed within one experiment).
        if let ProtocolMsg::Update { a, .. } = msg {
            self.observe(a, ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dslice_core::protocol::MockContext;
    use dslice_core::ViewEntry;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attr(v: f64) -> Attribute {
        Attribute::new(v).unwrap()
    }

    fn part(k: usize) -> Partition {
        Partition::equal(k).unwrap()
    }

    fn view_of(entries: &[(u64, f64, f64)]) -> View {
        let mut v = View::new(entries.len().max(1)).unwrap();
        for &(id, a, r) in entries {
            v.insert(ViewEntry::new(NodeId::new(id), attr(a), r));
        }
        v
    }

    fn ctx() -> MockContext<StdRng> {
        MockContext::new(StdRng::seed_from_u64(7))
    }

    #[test]
    fn initial_estimate_before_any_sample() {
        let node = Ranking::new(NodeId::new(1), attr(5.0), 0.42, part(10));
        assert_eq!(node.estimate(), 0.42);
        assert_eq!(node.samples(), 0);
    }

    #[test]
    fn active_step_absorbs_every_neighbor() {
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10));
        // Two lower, one higher.
        let view = view_of(&[(2, 10.0, 0.1), (3, 20.0, 0.2), (4, 90.0, 0.9)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert_eq!(node.samples(), 3);
        assert!((node.estimate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.count(Event::SampleAbsorbed), 3);
    }

    #[test]
    fn equal_attribute_counts_as_lower() {
        // Line 7 uses `a_j' ≤ a_i`.
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10));
        let view = view_of(&[(2, 50.0, 0.5)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert_eq!(node.estimate(), 1.0);
    }

    #[test]
    fn sends_to_boundary_closest_and_random_neighbor() {
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10));
        // Boundaries at 0.1, 0.2, …; neighbor 3's estimate 0.199 is closest.
        let view = view_of(&[(2, 10.0, 0.55), (3, 20.0, 0.199), (4, 90.0, 0.74)]);
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert_eq!(c.count(Event::UpdateSent), 2);
        let targets: Vec<NodeId> = c.sent.iter().map(|(to, _)| *to).collect();
        assert_eq!(targets[0], NodeId::new(3), "j1 = boundary-closest");
        assert!(
            view.contains(targets[1]),
            "j2 must be a view member, got {:?}",
            targets[1]
        );
        for (_, msg) in &c.sent {
            assert!(matches!(
                msg,
                ProtocolMsg::Update { from, a } if *from == NodeId::new(1) && *a == attr(50.0)
            ));
        }
    }

    #[test]
    fn empty_view_sends_nothing() {
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10));
        let view = View::new(4).unwrap();
        let mut c = ctx();
        node.on_active(&view, &mut c);
        assert!(c.sent.is_empty());
        assert_eq!(node.samples(), 0);
    }

    #[test]
    fn update_message_refines_estimate() {
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10));
        let view = View::new(4).unwrap();
        let mut c = ctx();
        node.on_message(
            &view,
            ProtocolMsg::Update {
                from: NodeId::new(2),
                a: attr(10.0),
            },
            &mut c,
        );
        node.on_message(
            &view,
            ProtocolMsg::Update {
                from: NodeId::new(3),
                a: attr(99.0),
            },
            &mut c,
        );
        assert_eq!(node.samples(), 2);
        assert_eq!(node.estimate(), 0.5);
    }

    #[test]
    fn swap_messages_are_ignored() {
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10));
        let view = View::new(4).unwrap();
        let mut c = ctx();
        node.on_message(
            &view,
            ProtocolMsg::SwapReq {
                from: NodeId::new(2),
                r: 0.4,
                a: attr(10.0),
            },
            &mut c,
        );
        assert!(c.sent.is_empty());
        assert_eq!(node.samples(), 0);
    }

    #[test]
    fn estimate_converges_to_true_normalized_rank() {
        // Node with attribute 70 in a population 0..99: true rank fraction
        // P(a ≤ 70) = 71/100. Stream uniform samples from the population.
        let mut node = Ranking::new(NodeId::new(1000), attr(70.0), 0.5, part(10));
        let view = View::new(4).unwrap();
        let mut c = ctx();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5000 {
            let a = attr(rand::Rng::gen_range(&mut rng, 0..100) as f64);
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(2),
                    a,
                },
                &mut c,
            );
        }
        assert!((node.estimate() - 0.71).abs() < 0.03);
    }

    #[test]
    fn sliding_variant_tracks_distribution_shift() {
        let mut node = SlidingRanking::with_window(NodeId::new(1), attr(50.0), 0.5, part(10), 100);
        let view = View::new(4).unwrap();
        let mut c = ctx();
        // Phase 1: all samples lower → estimate 1.0.
        for _ in 0..200 {
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(2),
                    a: attr(1.0),
                },
                &mut c,
            );
        }
        assert_eq!(node.estimate(), 1.0);
        // Phase 2 (churn shifted the population upward): all samples higher.
        // The window forgets phase 1 entirely after 100 samples.
        for _ in 0..100 {
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(3),
                    a: attr(99.0),
                },
                &mut c,
            );
        }
        assert_eq!(node.estimate(), 0.0);
        assert_eq!(node.samples(), 100);
    }

    #[test]
    fn slice_uses_estimate() {
        let p = part(4);
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.9, p.clone());
        assert_eq!(node.slice(&p).as_usize(), 3, "initial estimate");
        let view = View::new(4).unwrap();
        let mut c = ctx();
        // One lower, three higher → estimate 0.25 → slice 0.
        for a in [10.0, 90.0, 95.0, 99.0] {
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(2),
                    a: attr(a),
                },
                &mut c,
            );
        }
        assert_eq!(node.slice(&p).as_usize(), 0);
    }

    #[test]
    fn ranking_refuses_atomic_swaps() {
        // Estimate-based protocols hold no swappable value: the simulator's
        // transactional hook must refuse and adopt_value must be inert.
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.42, part(10));
        assert_eq!(node.try_atomic_swap(attr(120.0), 0.1), None);
        node.adopt_value(0.99);
        assert_eq!(node.estimate(), 0.42, "adopt_value is a no-op for ranking");
    }

    #[test]
    fn decay_variant_forgets_a_regional_shock() {
        // Pre-shock: samples uniformly straddle the node (estimate ~0.5).
        // Shock: the whole upper half vanishes — every remaining sample is
        // lower. The aging estimate must race toward 1.0; a counter would
        // crawl harmonically.
        let mut node = DecayRanking::with_lambda(NodeId::new(1), attr(50.0), 0.5, part(10), 0.95);
        let view = View::new(4).unwrap();
        let mut c = ctx();
        let send = |node: &mut DecayRanking, a: f64, c: &mut MockContext<StdRng>| {
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(2),
                    a: attr(a),
                },
                c,
            );
        };
        for i in 0..200 {
            send(&mut node, if i % 2 == 0 { 10.0 } else { 90.0 }, &mut c);
        }
        assert!((node.estimate() - 0.5).abs() < 0.05);
        for _ in 0..100 {
            send(&mut node, 10.0, &mut c);
        }
        assert!(
            node.estimate() > 0.98,
            "aging estimate must track the shock, got {}",
            node.estimate()
        );
    }

    #[test]
    fn robust_filter_rejects_inflated_samples() {
        let mut node = Ranking::new(NodeId::new(1), attr(50.0), 0.5, part(10))
            .with_filter(RobustFilter::new(16));
        let view = View::new(4).unwrap();
        let mut c = ctx();
        let send = |node: &mut Ranking, a: f64, c: &mut MockContext<StdRng>| {
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(2),
                    a: attr(a),
                },
                c,
            );
        };
        // Warm the window with an honest spread around the node.
        for i in 0..32 {
            send(&mut node, 30.0 + (i % 8) as f64 * 10.0, &mut c);
        }
        let absorbed_before = c.count(Event::SampleAbsorbed);
        let estimate_before = node.estimate();
        assert_eq!(c.count(Event::SampleRejected), 0);
        // A liar's 10×-inflated attribute is far outside the fences.
        send(&mut node, 1000.0, &mut c);
        assert_eq!(c.count(Event::SampleRejected), 1);
        assert_eq!(c.count(Event::SampleAbsorbed), absorbed_before);
        assert_eq!(
            node.estimate(),
            estimate_before,
            "rejected samples must not move the estimate"
        );
        // Honest samples keep flowing.
        send(&mut node, 60.0, &mut c);
        assert_eq!(c.count(Event::SampleAbsorbed), absorbed_before + 1);
    }

    #[test]
    fn robust_filter_readmits_after_honest_shift() {
        // The attribute landscape genuinely moves (churn rotates the
        // population upward): rejected-but-remembered samples widen the
        // fences so the new range is accepted within one window turnover.
        let mut filter = RobustFilter::new(8);
        for i in 0..8 {
            assert!(filter.admit(10.0 + i as f64));
        }
        assert!(!filter.admit(1000.0), "the jump itself is an outlier");
        let mut admitted = 0;
        for _ in 0..16 {
            if filter.admit(1000.0) {
                admitted += 1;
            }
        }
        assert!(
            admitted >= 8,
            "a sustained shift must be re-admitted, got {admitted}/16"
        );
    }

    #[test]
    fn robust_filter_warmup_admits_everything() {
        let mut filter = RobustFilter::new(4);
        assert!(filter.admit(1.0));
        assert!(filter.admit(1e9), "no fences before the window fills");
        assert_eq!(filter.window_capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "fence multiplier")]
    fn robust_filter_rejects_bad_fence() {
        let _ = RobustFilter::with_fence(8, 0.0);
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trimmed_filter_rejects_bad_fraction() {
        let _ = RobustFilter::trimmed(8, 0.5);
    }

    #[test]
    fn trimmed_filter_rejects_inside_fence_collusion() {
        // A colluder aims just inside the upper Tukey fence: the fence-only
        // filter admits the poison, the trim band does not.
        let honest: Vec<f64> = (0..16).map(|i| 30.0 + (i % 8) as f64 * 10.0).collect();
        let mut fenced = RobustFilter::new(16);
        let mut trimmed = RobustFilter::trimmed(16, 0.2);
        for &v in &honest {
            fenced.admit(v);
            trimmed.admit(v);
        }
        // Tukey fences over this spread: q1 ≈ 47.5, q3 ≈ 82.5, so the
        // k=3 upper fence sits near 187. Aim just inside it.
        let (_, hi) = {
            let mut probe = ValueWindow::new(16);
            for &v in &honest {
                probe.push(v);
            }
            probe.tukey_fences(RobustFilter::DEFAULT_FENCE_K).unwrap()
        };
        let poison = hi * 0.999;
        assert!(
            fenced.admit(poison),
            "fence-only admits the adaptive claim {poison}"
        );
        assert!(
            !trimmed.admit(poison),
            "the trim band rejects the same claim {poison}"
        );
        // The honest core still flows through the trimmed filter.
        assert!(trimmed.admit(60.0));
    }

    #[test]
    fn trimmed_estimate_is_debiased_to_true_rank() {
        // Node at rank 0.7 of a uniform 0..100 stream under a 20% trim:
        // admitted samples span only the [20, 80] quantile band, so the raw
        // ratio converges near (0.7 − 0.2)/0.6 ≈ 0.83. The published
        // estimate must be rescaled back to the true rank.
        let mut node = Ranking::new(NodeId::new(1), attr(70.0), 0.5, part(4))
            .with_filter(RobustFilter::trimmed(32, 0.2));
        let view = View::new(4).unwrap();
        let mut c = ctx();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..4000 {
            let a = attr(rand::Rng::gen_range(&mut rng, 0..100) as f64);
            node.on_message(
                &view,
                ProtocolMsg::Update {
                    from: NodeId::new(2),
                    a,
                },
                &mut c,
            );
        }
        assert!(
            (node.estimate() - 0.7).abs() < 0.05,
            "debiased trimmed estimate should track the true rank, got {}",
            node.estimate()
        );
        assert!(c.count(Event::SampleRejected) > 0, "the trim must be live");
    }

    #[test]
    fn fenced_trimmed_composes_both_tests() {
        let mut filter = RobustFilter::fenced_trimmed(8, 0.2);
        assert!(filter.has_fence());
        assert_eq!(filter.trim_fraction(), Some(0.2));
        for i in 0..8 {
            assert!(filter.admit(10.0 + i as f64));
        }
        // Far outside the fences: rejected.
        assert!(!filter.admit(1000.0));
        // Outside the trim band but inside the fences: still rejected.
        assert!(!filter.admit(25.0));
        // Inside both: admitted.
        assert!(filter.admit(13.5));
    }

    #[test]
    fn fenced_trimmed_cuts_resist_window_pollution() {
        // The cut-shift attack: rejected samples still enter the window (so
        // the filter can re-learn a shifted distribution), and a naive trim
        // band computes its cuts over that polluted window. Poison parked at
        // the fence margin therefore drags the whole-window `quantile(0.9)`
        // cut upward *without a single poison sample being admitted* — every
        // debiased honest estimate deflates. The composed filter computes
        // its cuts over the fence-sanitized inlier subset instead, so the
        // cuts stay put.
        let honest: Vec<f64> = (0..64).map(|i| (i as f64 + 0.5) / 64.0).collect();
        let poison = 2.25; // inside the k=3 admission fence of this stream
        let probe = 0.93; // honest top band, above the clean 0.9-quantile cut

        let mut clean = RobustFilter::trimmed(64, 0.1);
        for &v in &honest {
            clean.admit(v);
        }
        assert!(
            !clean.admit(probe),
            "clean trim band cuts the top decile: {probe} is rejected"
        );

        let mut naive = RobustFilter::trimmed(64, 0.1);
        let mut fenced = RobustFilter::fenced_trimmed(64, 0.1);
        for &v in &honest {
            naive.admit(v);
            fenced.admit(v);
        }
        for _ in 0..4 {
            assert!(!naive.admit(poison), "poison is never admitted");
            assert!(!fenced.admit(poison), "poison is never admitted");
        }
        // Naive cuts over the polluted window have shifted: the same probe
        // the clean filter rejected now slips through.
        assert!(
            naive.admit(probe),
            "naive trim cut was dragged up by unadmitted poison"
        );
        // Fence-sanitized cuts ignore the poison: the probe is still cut.
        assert!(
            !fenced.admit(probe),
            "sanitized trim cut must not move under pollution"
        );
        // And the honest core still flows.
        assert!(fenced.admit(0.5));
    }

    proptest! {
        #[test]
        fn degenerate_windows_never_panic_and_admit_zero_spread(
            w in 1usize..4,
            value in -1e6f64..1e6,
            probes in proptest::collection::vec(-1e6f64..1e6, 1..32),
        ) {
            // w < 4 leaves no room for a meaningful IQR, and an all-equal
            // window has zero spread: both must degrade to admit-everything
            // rather than panic or reject the (only) honest value.
            for mut filter in [
                RobustFilter::new(w),
                RobustFilter::trimmed(w, 0.25),
                RobustFilter::fenced_trimmed(w, 0.25),
            ] {
                for _ in 0..(w + 4) {
                    prop_assert!(filter.admit(value), "all-equal stream must pass");
                }
                for &p in &probes {
                    filter.admit(p); // must not panic, admission unspecified
                }
            }
        }

        #[test]
        fn all_equal_full_windows_admit_their_own_value(
            w in 4usize..32,
            value in -1e6f64..1e6,
        ) {
            let mut filter = RobustFilter::fenced_trimmed(w, 0.1);
            for _ in 0..(2 * w) {
                prop_assert!(
                    filter.admit(value),
                    "zero-spread window must keep admitting its own value"
                );
            }
        }

        #[test]
        fn estimate_is_always_a_probability(
            samples in proptest::collection::vec(-1e3f64..1e3, 0..200),
        ) {
            let mut node = Ranking::new(NodeId::new(1), attr(0.0), 0.5, part(5));
            let view = View::new(4).unwrap();
            let mut c = ctx();
            for a in samples {
                node.on_message(
                    &view,
                    ProtocolMsg::Update { from: NodeId::new(2), a: attr(a) },
                    &mut c,
                );
                let e = node.estimate();
                prop_assert!((0.0..=1.0).contains(&e));
            }
        }

        #[test]
        fn counter_estimate_equals_empirical_cdf(
            my_attr in -100f64..100.0,
            samples in proptest::collection::vec(-100f64..100.0, 1..100),
        ) {
            let mut node = Ranking::new(NodeId::new(1), attr(my_attr), 0.5, part(5));
            let view = View::new(4).unwrap();
            let mut c = ctx();
            for &a in &samples {
                node.on_message(
                    &view,
                    ProtocolMsg::Update { from: NodeId::new(2), a: attr(a) },
                    &mut c,
                );
            }
            let expect = samples.iter().filter(|&&a| a <= my_attr).count() as f64
                / samples.len() as f64;
            prop_assert!((node.estimate() - expect).abs() < 1e-12);
        }
    }
}
